//! One-dimensional Gaussian mixture models fit with Expectation–Maximization.
//!
//! This is the clustering engine of the BST methodology (paper §4.2):
//! "we employ GMM in conjunction with the Expectation-Maximization (EM)
//! methodology (GMM-EM) to iteratively compute the maximum likelihood that
//! each speed test data point belongs to its respective upload/download
//! speed cluster."
//!
//! The implementation supports:
//! * k-means++ initialization (robust on the spiky, heavy-tailed speed
//!   distributions this workspace generates),
//! * per-component mean, variance, and weight (the "parameters associated
//!   with a GMM cluster/component" of §4.2),
//! * soft responsibilities and hard assignment,
//! * BIC/AIC for the component-count ablation.

use crate::error::{validate_sample, StatsError};
use crate::kmeans::kmeans_1d;
use crate::Result;
use rand::Rng;

const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// Point-block size for the EM normalize pass: large enough that the
/// contiguous column segments amortize the loop overhead and vectorize,
/// small enough that one block of every column stays cache-resident
/// (`EM_BLOCK × cols × 8 B` ≈ 32 KiB at 8 columns).
const EM_BLOCK: usize = 512;

/// Configuration for [`GaussianMixture::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on mean per-sample log-likelihood improvement.
    pub tol: f64,
    /// Variance floor, as a fraction of the overall sample variance, to stop
    /// components collapsing onto single points.
    pub var_floor_frac: f64,
    /// Initial weight of an optional uniform background component that
    /// absorbs outliers. `None` disables it. With tight clusters plus
    /// scattered stragglers, a pure Gaussian mixture lets its widest
    /// component balloon into a straggler-collector; the background
    /// component keeps the Gaussians on the clusters.
    pub background_weight: Option<f64>,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig { k: 1, max_iter: 200, tol: 1e-7, var_floor_frac: 1e-4, background_weight: None }
    }
}

impl GmmConfig {
    /// Config with `k` components and default EM settings.
    pub fn with_k(k: usize) -> Self {
        GmmConfig { k, ..Default::default() }
    }
}

/// One fitted Gaussian component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Mixing weight (sums to 1 across components).
    pub weight: f64,
    /// Mean.
    pub mean: f64,
    /// Variance.
    pub var: f64,
}

impl Component {
    /// Log-density of `x` under this component (without the weight).
    fn log_pdf(&self, x: f64) -> f64 {
        let d = x - self.mean;
        -0.5 * (LN_2PI + self.var.ln() + d * d / self.var)
    }
}

/// Diagnostics from an EM fit.
#[derive(Debug, Clone, PartialEq)]
pub struct GmmFit {
    /// Final mean per-sample log-likelihood.
    pub log_likelihood: f64,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iter`.
    pub converged: bool,
    /// Mean per-sample log-likelihood after each E-step, one entry per
    /// iteration (`trajectory.len() == iterations`). A pure function of
    /// the data and initialization, so it belongs to the deterministic
    /// metric class (DESIGN.md §13).
    pub trajectory: Vec<f64>,
}

/// A fitted 1-D Gaussian mixture, optionally with a uniform background
/// (outlier) component.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    components: Vec<Component>,
    /// `(weight, log_density)` of the uniform background, if enabled.
    background: Option<(f64, f64)>,
    fit: GmmFit,
    n_samples: usize,
}

impl GaussianMixture {
    /// Fit a `cfg.k`-component mixture to `data` with EM, initialized by
    /// k-means++.
    pub fn fit<R: Rng + ?Sized>(data: &[f64], cfg: GmmConfig, rng: &mut R) -> Result<Self> {
        validate_sample(data)?;
        if cfg.k == 0 {
            return Err(StatsError::InvalidParameter { what: "k", value: 0.0 });
        }
        if data.len() < cfg.k {
            return Err(StatsError::TooFewSamples { needed: cfg.k, got: data.len() });
        }
        let n = data.len();
        let k = cfg.k;

        let total_var = crate::describe::variance(data).max(1e-12);
        let var_floor = (total_var * cfg.var_floor_frac).max(1e-12);

        // --- Initialization from k-means++ ---
        let km = kmeans_1d(data, k, 50, rng)?;
        let mut comps: Vec<Component> = (0..k)
            .map(|c| {
                let members: Vec<f64> = data
                    .iter()
                    .zip(&km.assignments)
                    .filter(|(_, &a)| a == c)
                    .map(|(&x, _)| x)
                    .collect();
                let weight = (members.len() as f64 / n as f64).max(1e-6);
                let mean = if members.is_empty() {
                    km.centers[c]
                } else {
                    crate::describe::mean(&members)
                };
                let var = if members.len() < 2 {
                    total_var / k as f64
                } else {
                    crate::describe::variance(&members).max(var_floor)
                };
                Component { weight, mean, var }
            })
            .collect();
        normalize_weights(&mut comps);
        Self::run_em(data, comps, cfg, var_floor, 0)
    }

    /// The EM loop shared by the initialization strategies.
    ///
    /// For the first `freeze_means_iters` iterations the M-step updates
    /// only weights and variances. Seeded initializations use this so
    /// component weights can shrink to the data's true mixture before
    /// means are allowed to migrate — without it, a seeded component with
    /// little nearby mass drifts into the gap between clusters.
    fn run_em(
        data: &[f64],
        mut comps: Vec<Component>,
        cfg: GmmConfig,
        var_floor: f64,
        freeze_means_iters: usize,
    ) -> Result<Self> {
        let n = data.len();
        let k = comps.len();

        // Optional uniform background over the (padded) data range.
        let mut background = cfg.background_weight.map(|w0| {
            let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let range = (hi - lo).max(1e-9) * 1.1;
            (w0.clamp(1e-6, 0.5), -(range.ln()))
        });
        if let Some((bg_w, _)) = background {
            // Make room in the simplex for the background weight.
            for c in comps.iter_mut() {
                c.weight *= 1.0 - bg_w;
            }
        }

        let cols = k + usize::from(background.is_some());
        let mut resp = vec![0.0f64; n * cols];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut converged = false;
        let mut last_ll = prev_ll;
        let mut trajectory = Vec::with_capacity(cfg.max_iter.min(64));

        for it in 0..cfg.max_iter {
            iterations = it + 1;
            let ll = em_step(
                data,
                &mut comps,
                &mut background,
                &mut resp,
                var_floor,
                it >= freeze_means_iters,
            );
            if !ll.is_finite() {
                return Err(StatsError::Diverged { iteration: it });
            }
            last_ll = ll;
            trajectory.push(ll);

            // Never declare convergence while means are still frozen — the
            // likelihood can plateau in the warmup and leave seeds unmoved.
            if (ll - prev_ll).abs() < cfg.tol && it > 0 && it >= freeze_means_iters {
                converged = true;
                break;
            }
            prev_ll = ll;
        }

        // Canonical order: ascending mean, so cluster index 0 is always the
        // slowest tier.
        comps.sort_by(|a, b| a.mean.partial_cmp(&b.mean).expect("finite"));

        Ok(GaussianMixture {
            components: comps,
            background,
            fit: GmmFit { log_likelihood: last_ll, iterations, converged, trajectory },
            n_samples: n,
        })
    }

    /// Fit a mixture with EM starting from caller-supplied component means
    /// (variances start at the sample variance, weights uniform).
    ///
    /// Domain-informed initialization: when the caller knows where clusters
    /// *should* sit (e.g. ISP plan caps), seeding EM there keeps thin
    /// clusters from being absorbed by heavy neighbours.
    pub fn fit_with_means(data: &[f64], init_means: &[f64], cfg: GmmConfig) -> Result<Self> {
        validate_sample(data)?;
        if init_means.is_empty() {
            return Err(StatsError::InvalidParameter { what: "init means", value: 0.0 });
        }
        if data.len() < init_means.len() {
            return Err(StatsError::TooFewSamples { needed: init_means.len(), got: data.len() });
        }
        for (i, &m) in init_means.iter().enumerate() {
            if !m.is_finite() {
                return Err(StatsError::NonFinite { index: i, value: m });
            }
        }
        let k = init_means.len();
        let total_var = crate::describe::variance(data).max(1e-12);
        let var_floor = (total_var * cfg.var_floor_frac).max(1e-12);
        // Initial spread per component: a quarter of the gap to its nearest
        // seeded neighbour, so components own their own neighbourhood and a
        // thin cluster's seed cannot balloon into an outlier-absorber.
        let mut sorted = init_means.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        let init_var = |m: f64| -> f64 {
            let gap = sorted
                .iter()
                .filter(|&&o| o != m)
                .map(|&o| (o - m).abs())
                .fold(f64::INFINITY, f64::min);
            if gap.is_finite() {
                ((gap / 4.0) * (gap / 4.0)).max(var_floor)
            } else {
                total_var.max(var_floor) // single component
            }
        };
        let comps: Vec<Component> = init_means
            .iter()
            .map(|&m| Component { weight: 1.0 / k as f64, mean: m, var: init_var(m) })
            .collect();
        Self::run_em(data, comps, GmmConfig { k, ..cfg }, var_floor, 10)
    }

    /// Fit mixtures for each `k` in `k_range` and return the one minimizing
    /// BIC. Used by the ablation comparing KDE-peak counting against
    /// information-criterion model selection.
    pub fn fit_best_bic<R: Rng + ?Sized>(
        data: &[f64],
        k_range: std::ops::RangeInclusive<usize>,
        rng: &mut R,
    ) -> Result<Self> {
        let mut best: Option<(f64, GaussianMixture)> = None;
        for k in k_range {
            if k == 0 || k > data.len() {
                continue;
            }
            let gm = GaussianMixture::fit(data, GmmConfig::with_k(k), rng)?;
            let bic = gm.bic();
            match &best {
                Some((b, _)) if *b <= bic => {}
                _ => best = Some((bic, gm)),
            }
        }
        best.map(|(_, g)| g).ok_or(StatsError::EmptyInput)
    }

    /// The fitted components, sorted by ascending mean.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Component means, ascending.
    pub fn means(&self) -> Vec<f64> {
        self.components.iter().map(|c| c.mean).collect()
    }

    /// Fit diagnostics.
    pub fn fit_info(&self) -> &GmmFit {
        &self.fit
    }

    /// The uniform background component's `(weight, log_density)`, if the
    /// mixture was fit with one.
    pub fn background(&self) -> Option<(f64, f64)> {
        self.background
    }

    /// Log-density of `x` under the mixture (including any background).
    pub fn log_pdf(&self, x: f64) -> f64 {
        let mut max_lp = f64::NEG_INFINITY;
        let mut lps: Vec<f64> = self
            .components
            .iter()
            .map(|c| {
                let lp = c.weight.ln() + c.log_pdf(x);
                max_lp = max_lp.max(lp);
                lp
            })
            .collect();
        if let Some((bw, bld)) = self.background {
            let lp = bw.ln() + bld;
            max_lp = max_lp.max(lp);
            lps.push(lp);
        }
        max_lp + lps.iter().map(|lp| (lp - max_lp).exp()).sum::<f64>().ln()
    }

    /// Density of `x` under the mixture.
    pub fn pdf(&self, x: f64) -> f64 {
        self.log_pdf(x).exp()
    }

    /// Posterior responsibilities `P(component c | x)` for one point.
    pub fn responsibilities(&self, x: f64) -> Vec<f64> {
        let lps: Vec<f64> = self.components.iter().map(|c| c.weight.ln() + c.log_pdf(x)).collect();
        let max_lp = lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lps.iter().map(|lp| (lp - max_lp).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Hard cluster assignment (argmax responsibility) for one point.
    pub fn predict(&self, x: f64) -> usize {
        let r = self.responsibilities(x);
        r.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("at least one component")
    }

    /// Per-component constants hoisted for batch scoring:
    /// `(ln weight, ln var, mean, var)`.
    fn score_consts(&self) -> Vec<(f64, f64, f64, f64)> {
        self.components.iter().map(|c| (c.weight.ln(), c.var.ln(), c.mean, c.var)).collect()
    }

    /// Hard assignments for a batch.
    ///
    /// One reusable scratch row instead of three `Vec` allocations per
    /// point, with the `ln` terms hoisted out of the point loop. The
    /// arithmetic replicates [`GaussianMixture::predict`] operation for
    /// operation (exp-normalize, then last-max-wins argmax over the
    /// normalized responsibilities), so assignments are bit-identical to
    /// the pointwise path.
    pub fn predict_batch(&self, data: &[f64]) -> Vec<usize> {
        let consts = self.score_consts();
        let mut lps = vec![0.0f64; consts.len()];
        data.iter()
            .map(|&x| {
                let mut max_lp = f64::NEG_INFINITY;
                for (dst, &(lw, lv, mean, var)) in lps.iter_mut().zip(&consts) {
                    let d = x - mean;
                    let lp = lw + -0.5 * (LN_2PI + lv + d * d / var);
                    *dst = lp;
                    max_lp = max_lp.max(lp);
                }
                let mut sum = 0.0;
                for v in lps.iter_mut() {
                    let d = *v - max_lp;
                    // Same exact-case shortcuts as `em_step`'s normalize
                    // pass: exp(±0) == 1.0, exp(d) == +0.0 for d ≤ -746.
                    *v = if d == 0.0 {
                        1.0
                    } else if d < -746.0 {
                        0.0
                    } else {
                        d.exp()
                    };
                    sum += *v;
                }
                let (mut best, mut best_r) = (0usize, f64::NEG_INFINITY);
                for (c, &e) in lps.iter().enumerate() {
                    let r = e / sum;
                    // `>=`: ties resolve to the last maximum, matching
                    // `Iterator::max_by` in `predict`.
                    if r >= best_r {
                        best_r = r;
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Batched [`GaussianMixture::predict_with_background`]: hard
    /// assignment per point, `None` where the uniform background
    /// out-scores every Gaussian component. Hoists the per-component `ln`
    /// terms; the comparison order (last-max-wins over components, then
    /// the background test) replicates the pointwise path bit-for-bit.
    pub fn predict_with_background_batch(&self, data: &[f64]) -> Vec<Option<usize>> {
        let consts = self.score_consts();
        let bg_lp = self.background.map(|(bw, bld)| bw.ln() + bld);
        data.iter()
            .map(|&x| {
                let (mut best, mut best_lp) = (0usize, f64::NEG_INFINITY);
                for (c, &(lw, lv, mean, var)) in consts.iter().enumerate() {
                    let d = x - mean;
                    let lp = lw + -0.5 * (LN_2PI + lv + d * d / var);
                    if lp >= best_lp {
                        best_lp = lp;
                        best = c;
                    }
                }
                match bg_lp {
                    Some(b) if b > best_lp => None,
                    _ => Some(best),
                }
            })
            .collect()
    }

    /// Hard assignment that may reject a point as background noise:
    /// `None` when the uniform background (if fitted) out-scores every
    /// Gaussian component for `x`.
    pub fn predict_with_background(&self, x: f64) -> Option<usize> {
        let best = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.weight.ln() + c.log_pdf(x)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("at least one component");
        if let Some((bw, bld)) = self.background {
            if bw.ln() + bld > best.1 {
                return None;
            }
        }
        Some(best.0)
    }

    /// Bayesian information criterion (lower is better).
    /// A 1-D k-component mixture has `3k - 1` free parameters (plus one
    /// for a background weight).
    pub fn bic(&self) -> f64 {
        let p = (3 * self.k() - 1 + usize::from(self.background.is_some())) as f64;
        let n = self.n_samples as f64;
        p * n.ln() - 2.0 * self.fit.log_likelihood * n
    }

    /// Akaike information criterion (lower is better).
    pub fn aic(&self) -> f64 {
        let p = (3 * self.k() - 1) as f64;
        let n = self.n_samples as f64;
        2.0 * p - 2.0 * self.fit.log_likelihood * n
    }
}

fn normalize_weights(comps: &mut [Component]) {
    let total: f64 = comps.iter().map(|c| c.weight).sum();
    for c in comps {
        c.weight /= total;
    }
}

/// One EM iteration over column-major responsibilities (DESIGN.md §15).
///
/// The E-step fills one contiguous column per component
/// (`resp[c*n..(c+1)*n]`) with log-posteriors — the `ln(weight)` and
/// `ln(var)` terms are hoisted out of the point loop — then a per-point
/// pass normalizes across columns with log-sum-exp in ascending component
/// order (background last), exactly the order the row-major scalar
/// reference uses. The M-step reduces each column sequentially in
/// ascending point order. Every accumulation order matches
/// [`reference_em_step`] bit-for-bit; the proptests enforce it.
///
/// `resp` must hold `data.len() * (comps.len() + background slots)`
/// elements. Returns the mean per-sample log-likelihood of the E-step.
/// With `update_means` false the M-step leaves component means in place
/// (the seeded-init warmup).
#[doc(hidden)]
pub fn em_step(
    data: &[f64],
    comps: &mut [Component],
    background: &mut Option<(f64, f64)>,
    resp: &mut [f64],
    var_floor: f64,
    update_means: bool,
) -> f64 {
    let n = data.len();
    let k = comps.len();
    let cols = k + usize::from(background.is_some());
    assert_eq!(resp.len(), n * cols, "responsibility buffer shape");

    // E-step, columnar fill: one contiguous pass per component.
    for (c, comp) in comps.iter().enumerate() {
        let lw = comp.weight.ln();
        let lv = comp.var.ln();
        let (mean, var) = (comp.mean, comp.var);
        for (dst, &x) in resp[c * n..(c + 1) * n].iter_mut().zip(data) {
            let d = x - mean;
            *dst = lw + -0.5 * (LN_2PI + lv + d * d / var);
        }
    }
    if let Some((bw, bld)) = *background {
        resp[k * n..(k + 1) * n].fill(bw.ln() + bld);
    }

    // E-step, per-point log-sum-exp across columns (component order, then
    // background — the same summation order as the scalar reference).
    //
    // Points are processed in fixed blocks with the component loop inside:
    // each pass then streams contiguous column segments instead of striding
    // the full buffer per point, and the max/divide passes vectorize. The
    // interchange only reorders work across *independent* points — each
    // point's max, sum, and divisions still run in ascending component
    // order, and `ll_sum` still accumulates in ascending point order, so
    // the result is bit-identical to the per-point loop.
    let mut blk_max = [f64::NEG_INFINITY; EM_BLOCK];
    let mut blk_sum = [0.0f64; EM_BLOCK];
    let mut ll_sum = 0.0;
    let mut start = 0;
    while start < n {
        let len = EM_BLOCK.min(n - start);
        let bm = &mut blk_max[..len];
        bm.fill(f64::NEG_INFINITY);
        for c in 0..cols {
            let col = &resp[c * n + start..c * n + start + len];
            for (m, &v) in bm.iter_mut().zip(col) {
                *m = m.max(v);
            }
        }
        let bs = &mut blk_sum[..len];
        bs.fill(0.0);
        for c in 0..cols {
            let col = &mut resp[c * n + start..c * n + start + len];
            for ((v, s), &m) in col.iter_mut().zip(bs.iter_mut()).zip(bm.iter()) {
                let d = *v - m;
                // Branch-free of the libm call on the two exact cases:
                // exp(±0) == 1.0 (the argmax column) and exp(d) == +0.0
                // for d ≤ -746 (well below ln(2^-1075) ≈ -745.14, where
                // exp rounds to zero) — well-separated components land
                // here for most points, and neither shortcut changes a
                // single bit.
                let e = if d == 0.0 {
                    1.0
                } else if d < -746.0 {
                    0.0
                } else {
                    d.exp()
                };
                *v = e;
                *s += e;
            }
        }
        for c in 0..cols {
            let col = &mut resp[c * n + start..c * n + start + len];
            for (v, &s) in col.iter_mut().zip(bs.iter()) {
                *v /= s;
            }
        }
        for (&m, &s) in bm.iter().zip(bs.iter()) {
            ll_sum += m + s.ln();
        }
        start += len;
    }
    let ll = ll_sum / n as f64;

    // M-step: contiguous per-component column reductions. With frozen
    // means the first-moment accumulator would be discarded, so the two
    // passes fuse into one; each accumulator still sums in ascending
    // point order, so the fusion is bit-neutral.
    for (c, comp) in comps.iter_mut().enumerate() {
        let col = &resp[c * n..(c + 1) * n];
        let (nk, mean, var_acc) = if update_means {
            let mut nk = 0.0;
            let mut mean_acc = 0.0;
            for (&r, &x) in col.iter().zip(data) {
                nk += r;
                mean_acc += r * x;
            }
            let mean = mean_acc / nk.max(1e-12);
            let mut var_acc = 0.0;
            for (&r, &x) in col.iter().zip(data) {
                let d = x - mean;
                var_acc += r * d * d;
            }
            (nk, mean, var_acc)
        } else {
            let mean = comp.mean;
            let mut nk = 0.0;
            let mut var_acc = 0.0;
            for (&r, &x) in col.iter().zip(data) {
                nk += r;
                let d = x - mean;
                var_acc += r * d * d;
            }
            (nk, mean, var_acc)
        };
        let nk_safe = nk.max(1e-12);
        *comp = Component { weight: nk / n as f64, mean, var: (var_acc / nk_safe).max(var_floor) };
    }
    if let Some((bw, _)) = background.as_mut() {
        let nk: f64 = resp[k * n..(k + 1) * n].iter().sum();
        *bw = (nk / n as f64).clamp(1e-9, 0.9);
    } else {
        normalize_weights(comps);
    }
    ll
}

/// Scalar row-major reference for one EM iteration — the pre-columnar
/// implementation, retained verbatim as the executable contract for
/// [`em_step`]. Allocates a responsibility row per point and recomputes
/// `ln` terms inline; slow, but the proptests assert the production
/// kernel matches it bit-for-bit.
#[doc(hidden)]
pub fn reference_em_step(
    data: &[f64],
    comps: &mut [Component],
    background: &mut Option<(f64, f64)>,
    var_floor: f64,
    update_means: bool,
) -> f64 {
    let n = data.len();
    let k = comps.len();
    let cols = k + usize::from(background.is_some());
    let mut resp = vec![0.0f64; n * cols];

    let mut ll_sum = 0.0;
    for (i, &x) in data.iter().enumerate() {
        let row = &mut resp[i * cols..(i + 1) * cols];
        let mut max_lp = f64::NEG_INFINITY;
        for (c, comp) in comps.iter().enumerate() {
            let lp = comp.weight.ln() + comp.log_pdf(x);
            row[c] = lp;
            max_lp = max_lp.max(lp);
        }
        if let Some((bw, bld)) = *background {
            let lp = bw.ln() + bld;
            row[k] = lp;
            max_lp = max_lp.max(lp);
        }
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max_lp).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
        ll_sum += max_lp + sum.ln();
    }
    let ll = ll_sum / n as f64;

    for c in 0..k {
        let mut nk = 0.0;
        let mut mean_acc = 0.0;
        for (i, &x) in data.iter().enumerate() {
            let r = resp[i * cols + c];
            nk += r;
            mean_acc += r * x;
        }
        let nk_safe = nk.max(1e-12);
        let mean = if update_means { mean_acc / nk_safe } else { comps[c].mean };
        let mut var_acc = 0.0;
        for (i, &x) in data.iter().enumerate() {
            let d = x - mean;
            var_acc += resp[i * cols + c] * d * d;
        }
        comps[c] =
            Component { weight: nk / n as f64, mean, var: (var_acc / nk_safe).max(var_floor) };
    }
    if let Some((bw, _)) = background.as_mut() {
        let nk: f64 = (0..n).map(|i| resp[i * cols + k]).sum();
        *bw = (nk / n as f64).clamp(1e-9, 0.9);
    } else {
        normalize_weights(comps);
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn gaussians(spec: &[(f64, f64, usize)], seed: u64) -> Vec<f64> {
        let mut r = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for &(mu, sd, n) in spec {
            for _ in 0..n {
                // Box–Muller from uniform draws.
                let u1: f64 = r.gen::<f64>().max(1e-12);
                let u2: f64 = r.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                out.push(mu + sd * z);
            }
        }
        out
    }

    #[test]
    fn recovers_two_well_separated_components() {
        let data = gaussians(&[(5.0, 0.5, 500), (35.0, 1.0, 500)], 1);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        let m = gm.means();
        assert!((m[0] - 5.0).abs() < 0.2, "means: {m:?}");
        assert!((m[1] - 35.0).abs() < 0.5, "means: {m:?}");
        let w: Vec<f64> = gm.components().iter().map(|c| c.weight).collect();
        assert!((w[0] - 0.5).abs() < 0.05 && (w[1] - 0.5).abs() < 0.05, "weights: {w:?}");
    }

    #[test]
    fn recovers_four_upload_tiers() {
        // The ISP-A upload plan structure: 5 / 10 / 15 / 35 Mbps.
        let data =
            gaussians(&[(5.3, 0.6, 900), (11.3, 0.7, 300), (17.0, 0.8, 280), (40.0, 1.5, 500)], 2);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(4), &mut rng()).unwrap();
        let m = gm.means();
        for (expect, got) in [5.3, 11.3, 17.0, 40.0].iter().zip(&m) {
            assert!((expect - got).abs() < 1.0, "expected {expect}, got {got} in {m:?}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let data = gaussians(&[(0.0, 1.0, 200), (10.0, 1.0, 200)], 3);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        let total: f64 = gm.components().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let data = gaussians(&[(0.0, 1.0, 150), (8.0, 1.0, 150)], 4);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        for x in [-2.0, 0.0, 4.0, 8.0, 12.0] {
            let r = gm.responsibilities(x);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn predict_assigns_to_nearer_component() {
        let data = gaussians(&[(0.0, 1.0, 300), (20.0, 1.0, 300)], 5);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        assert_eq!(gm.predict(-1.0), 0);
        assert_eq!(gm.predict(21.0), 1);
    }

    #[test]
    fn variance_aware_assignment_beats_distance() {
        // A wide cluster at 0 (sd 5) and a narrow one at 12 (sd 0.5):
        // the point x = 8 is nearer to 12 in distance but far in the narrow
        // cluster's sigma units — GMM should assign it to the wide cluster.
        // (This is the paper's argument for GMM over k-means.)
        let data = gaussians(&[(0.0, 5.0, 2000), (12.0, 0.5, 2000)], 6);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        assert_eq!(gm.predict(8.0), 0, "components: {:?}", gm.components());
    }

    #[test]
    fn log_likelihood_is_monotone_across_em() {
        // Run EM step by step via increasing max_iter and check the final
        // log-likelihood never decreases (within tolerance).
        let data = gaussians(&[(3.0, 1.0, 300), (9.0, 1.5, 300)], 8);
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 2, 4, 8, 16, 32] {
            let mut r = rng(); // same seed → same init → same EM trajectory
            let cfg = GmmConfig { k: 2, max_iter: iters, tol: 0.0, ..Default::default() };
            let gm = GaussianMixture::fit(&data, cfg, &mut r).unwrap();
            let ll = gm.fit_info().log_likelihood;
            assert!(ll >= prev - 1e-9, "ll {ll} < prev {prev} at iters {iters}");
            prev = ll;
        }
    }

    #[test]
    fn trajectory_records_one_ll_per_iteration() {
        let data = gaussians(&[(3.0, 1.0, 300), (9.0, 1.5, 300)], 8);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        let fit = gm.fit_info();
        assert_eq!(fit.trajectory.len(), fit.iterations);
        assert_eq!(*fit.trajectory.last().unwrap(), fit.log_likelihood);
        // The trajectory is monotone non-decreasing (EM guarantee).
        for w in fit.trajectory.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "trajectory decreased: {w:?}");
        }
    }

    #[test]
    fn bic_selects_true_component_count() {
        let data = gaussians(&[(0.0, 0.7, 400), (10.0, 0.7, 400), (25.0, 0.7, 400)], 9);
        let gm = GaussianMixture::fit_best_bic(&data, 1..=6, &mut rng()).unwrap();
        assert_eq!(gm.k(), 3, "chose k = {}", gm.k());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let data = gaussians(&[(2.0, 0.8, 300), (7.0, 1.2, 300)], 10);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(2), &mut rng()).unwrap();
        let (lo, hi, n) = (-10.0, 20.0, 6000);
        let dx = (hi - lo) / n as f64;
        let integral: f64 = (0..n).map(|i| gm.pdf(lo + (i as f64 + 0.5) * dx) * dx).sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn fit_with_means_recovers_thin_clusters() {
        // A thin cluster (3% of mass) between two heavy ones: random init
        // tends to lose it, cap-seeded init must not.
        let data =
            gaussians(&[(5.3, 0.5, 900), (10.7, 0.6, 300), (15.7, 0.7, 40), (37.0, 1.5, 400)], 21);
        let gm =
            GaussianMixture::fit_with_means(&data, &[5.0, 10.0, 15.0, 35.0], GmmConfig::default())
                .unwrap();
        let m = gm.means();
        assert!((m[2] - 15.7).abs() < 1.2, "thin cluster mean {m:?}");
        // Points near 15.7 classify to component 2, not 1.
        assert_eq!(gm.predict(15.7), 2);
    }

    #[test]
    fn fit_with_means_is_deterministic() {
        let data = gaussians(&[(3.0, 1.0, 200), (9.0, 1.0, 200)], 22);
        let a = GaussianMixture::fit_with_means(&data, &[3.0, 9.0], GmmConfig::default()).unwrap();
        let b = GaussianMixture::fit_with_means(&data, &[3.0, 9.0], GmmConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fit_with_means_rejects_bad_input() {
        assert!(GaussianMixture::fit_with_means(&[1.0, 2.0], &[], GmmConfig::default()).is_err());
        assert!(GaussianMixture::fit_with_means(&[1.0], &[1.0, 2.0], GmmConfig::default()).is_err());
        assert!(GaussianMixture::fit_with_means(&[1.0, 2.0], &[f64::NAN], GmmConfig::default())
            .is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(GaussianMixture::fit(&[], GmmConfig::with_k(1), &mut rng()).is_err());
        assert!(GaussianMixture::fit(&[1.0], GmmConfig::with_k(0), &mut rng()).is_err());
        assert!(GaussianMixture::fit(&[1.0], GmmConfig::with_k(2), &mut rng()).is_err());
    }

    #[test]
    fn constant_data_does_not_panic() {
        let gm = GaussianMixture::fit(&[4.0; 100], GmmConfig::with_k(2), &mut rng()).unwrap();
        assert!(gm.predict(4.0) < 2);
        assert!(gm.components().iter().all(|c| c.var > 0.0));
    }

    #[test]
    fn single_component_matches_sample_moments() {
        let data = gaussians(&[(6.0, 2.0, 2000)], 11);
        let gm = GaussianMixture::fit(&data, GmmConfig::with_k(1), &mut rng()).unwrap();
        let c = gm.components()[0];
        assert!((c.mean - 6.0).abs() < 0.15, "mean {}", c.mean);
        assert!((c.var - 4.0).abs() < 0.5, "var {}", c.var);
        assert!((c.weight - 1.0).abs() < 1e-12);
    }
}
