//! Bivariate Gaussian mixture models with full covariance.
//!
//! The paper describes matching "each `<download speed, upload speed>`
//! measurement tuple" to a plan, but does so *hierarchically* (upload
//! first, then download within the group). The obvious alternative — one
//! joint 2-D mixture over the tuples — is the ablation this module
//! enables: fit a full-covariance bivariate GMM with one component per
//! plan and compare its plan recovery against BST's two-stage pipeline
//! (see `st-bst::ablation::joint_2d_tiers`).

use crate::error::StatsError;
use crate::Result;

const LN_2PI: f64 = 1.837_877_066_409_345_5;

/// A 2×2 symmetric covariance matrix `[[xx, xy], [xy, yy]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cov2 {
    /// Variance along x.
    pub xx: f64,
    /// Covariance between x and y.
    pub xy: f64,
    /// Variance along y.
    pub yy: f64,
}

impl Cov2 {
    /// Identity scaled by `s`.
    pub fn scaled_identity(s: f64) -> Self {
        Cov2 { xx: s, xy: 0.0, yy: s }
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        self.xx * self.yy - self.xy * self.xy
    }

    /// Whether the matrix is (strictly) positive definite.
    pub fn is_positive_definite(&self) -> bool {
        self.xx > 0.0 && self.det() > 0.0
    }

    /// Regularize toward positive definiteness by inflating the diagonal.
    fn regularized(mut self, floor: f64) -> Self {
        self.xx = self.xx.max(floor);
        self.yy = self.yy.max(floor);
        // Shrink correlation until PD (|rho| <= 0.99).
        let max_xy = 0.99 * (self.xx * self.yy).sqrt();
        self.xy = self.xy.clamp(-max_xy, max_xy);
        self
    }
}

/// One bivariate Gaussian component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component2 {
    /// Mixing weight.
    pub weight: f64,
    /// Mean `(x, y)`.
    pub mean: (f64, f64),
    /// Covariance.
    pub cov: Cov2,
}

impl Component2 {
    /// Log-density at `(x, y)` (without the weight).
    fn log_pdf(&self, x: f64, y: f64) -> f64 {
        let det = self.cov.det();
        let dx = x - self.mean.0;
        let dy = y - self.mean.1;
        // Inverse of [[xx, xy], [xy, yy]] is 1/det [[yy, -xy], [-xy, xx]].
        let quad =
            (self.cov.yy * dx * dx - 2.0 * self.cov.xy * dx * dy + self.cov.xx * dy * dy) / det;
        -(LN_2PI + 0.5 * det.ln() + 0.5 * quad)
    }
}

/// A fitted bivariate mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture2d {
    components: Vec<Component2>,
    log_likelihood: f64,
    iterations: usize,
}

impl GaussianMixture2d {
    /// Fit a mixture to `(x, y)` pairs with EM, seeded at `init_means`
    /// (one component per seed; spherical initial covariance derived from
    /// each seed's nearest-neighbour distance).
    pub fn fit_with_means(
        xs: &[f64],
        ys: &[f64],
        init_means: &[(f64, f64)],
        max_iter: usize,
        tol: f64,
    ) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if xs.len() != ys.len() {
            return Err(StatsError::InvalidParameter {
                what: "x/y length mismatch",
                value: ys.len() as f64,
            });
        }
        if init_means.is_empty() {
            return Err(StatsError::InvalidParameter { what: "init means", value: 0.0 });
        }
        if xs.len() < init_means.len() {
            return Err(StatsError::TooFewSamples { needed: init_means.len(), got: xs.len() });
        }
        for (i, &v) in xs.iter().chain(ys.iter()).enumerate() {
            if !v.is_finite() {
                return Err(StatsError::NonFinite { index: i % xs.len(), value: v });
            }
        }

        let n = xs.len();
        let k = init_means.len();
        let var_x = crate::describe::variance(xs).max(1e-12);
        let var_y = crate::describe::variance(ys).max(1e-12);
        let floor = (var_x.min(var_y) * 1e-4).max(1e-12);

        // Seed covariance: quarter nearest-neighbour distance, per axis.
        let mut comps: Vec<Component2> = init_means
            .iter()
            .map(|&(mx, my)| {
                let gap2 = init_means
                    .iter()
                    .filter(|&&(ox, oy)| (ox, oy) != (mx, my))
                    .map(|&(ox, oy)| (ox - mx).powi(2) + (oy - my).powi(2))
                    .fold(f64::INFINITY, f64::min);
                let s = if gap2.is_finite() { (gap2 / 16.0).max(floor) } else { var_x.max(var_y) };
                Component2 { weight: 1.0 / k as f64, mean: (mx, my), cov: Cov2::scaled_identity(s) }
            })
            .collect();

        let mut resp = vec![0.0f64; n * k];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut last_ll = prev_ll;
        let mut iterations = 0;
        // Freeze means for the first iterations (same rationale as 1-D).
        let freeze = 10usize;

        for it in 0..max_iter.max(1) {
            iterations = it + 1;
            // E-step.
            let mut ll_sum = 0.0;
            for i in 0..n {
                let row = &mut resp[i * k..(i + 1) * k];
                let mut max_lp = f64::NEG_INFINITY;
                for (c, comp) in comps.iter().enumerate() {
                    let lp = comp.weight.ln() + comp.log_pdf(xs[i], ys[i]);
                    row[c] = lp;
                    max_lp = max_lp.max(lp);
                }
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max_lp).exp();
                    sum += *v;
                }
                for v in row.iter_mut() {
                    *v /= sum;
                }
                ll_sum += max_lp + sum.ln();
            }
            let ll = ll_sum / n as f64;
            if !ll.is_finite() {
                return Err(StatsError::Diverged { iteration: it });
            }
            last_ll = ll;

            // M-step.
            for c in 0..k {
                let mut nk = 0.0;
                let (mut sx, mut sy) = (0.0, 0.0);
                for i in 0..n {
                    let r = resp[i * k + c];
                    nk += r;
                    sx += r * xs[i];
                    sy += r * ys[i];
                }
                let nk_safe = nk.max(1e-12);
                let mean = if it < freeze { comps[c].mean } else { (sx / nk_safe, sy / nk_safe) };
                let (mut cxx, mut cxy, mut cyy) = (0.0, 0.0, 0.0);
                for i in 0..n {
                    let r = resp[i * k + c];
                    let dx = xs[i] - mean.0;
                    let dy = ys[i] - mean.1;
                    cxx += r * dx * dx;
                    cxy += r * dx * dy;
                    cyy += r * dy * dy;
                }
                comps[c] = Component2 {
                    weight: nk / n as f64,
                    mean,
                    cov: Cov2 { xx: cxx / nk_safe, xy: cxy / nk_safe, yy: cyy / nk_safe }
                        .regularized(floor),
                };
            }
            let total_w: f64 = comps.iter().map(|c| c.weight).sum();
            for c in comps.iter_mut() {
                c.weight /= total_w;
            }

            if (ll - prev_ll).abs() < tol && it >= freeze {
                break;
            }
            prev_ll = ll;
        }

        Ok(GaussianMixture2d { components: comps, log_likelihood: last_ll, iterations })
    }

    /// The fitted components, in seed order.
    pub fn components(&self) -> &[Component2] {
        &self.components
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Final mean per-sample log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// EM iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Posterior responsibilities at `(x, y)`.
    pub fn responsibilities(&self, x: f64, y: f64) -> Vec<f64> {
        let lps: Vec<f64> =
            self.components.iter().map(|c| c.weight.ln() + c.log_pdf(x, y)).collect();
        let max_lp = lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lps.iter().map(|lp| (lp - max_lp).exp()).collect();
        let sum: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / sum).collect()
    }

    /// Hard component assignment for `(x, y)`.
    pub fn predict(&self, x: f64, y: f64) -> usize {
        self.responsibilities(x, y)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("at least one component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 2-D Gaussian clusters via an LCG + Box–Muller.
    fn clusters(spec: &[((f64, f64), f64, usize)], seed: u64) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
        let mut state = seed.max(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let (mut xs, mut ys, mut truth) = (Vec::new(), Vec::new(), Vec::new());
        for (idx, &((mx, my), sd, n)) in spec.iter().enumerate() {
            for _ in 0..n {
                let (u1, u2) = (next().max(1e-12), next());
                let (u3, u4) = (next().max(1e-12), next());
                let zx = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let zy = (-2.0 * u3.ln()).sqrt() * (std::f64::consts::TAU * u4).cos();
                xs.push(mx + sd * zx);
                ys.push(my + sd * zy);
                truth.push(idx);
            }
        }
        (xs, ys, truth)
    }

    #[test]
    fn recovers_well_separated_2d_clusters() {
        let (xs, ys, truth) = clusters(
            &[((100.0, 5.0), 3.0, 400), ((400.0, 10.0), 8.0, 300), ((900.0, 35.0), 15.0, 300)],
            3,
        );
        let gm = GaussianMixture2d::fit_with_means(
            &xs,
            &ys,
            &[(100.0, 5.0), (400.0, 10.0), (900.0, 35.0)],
            200,
            1e-7,
        )
        .unwrap();
        let correct = (0..xs.len()).filter(|&i| gm.predict(xs[i], ys[i]) == truth[i]).count();
        assert!(correct as f64 / xs.len() as f64 > 0.99);
        for (c, &(mx, my)) in
            gm.components().iter().zip(&[(100.0, 5.0), (400.0, 10.0), (900.0, 35.0)])
        {
            assert!((c.mean.0 - mx).abs() < 10.0, "{:?}", c.mean);
            assert!((c.mean.1 - my).abs() < 2.0, "{:?}", c.mean);
        }
    }

    #[test]
    fn covariances_stay_positive_definite() {
        let (xs, ys, _) = clusters(&[((10.0, 10.0), 1.0, 200), ((30.0, 12.0), 2.0, 200)], 7);
        let gm =
            GaussianMixture2d::fit_with_means(&xs, &ys, &[(10.0, 10.0), (30.0, 12.0)], 100, 1e-7)
                .unwrap();
        for c in gm.components() {
            assert!(c.cov.is_positive_definite(), "{:?}", c.cov);
        }
    }

    #[test]
    fn responsibilities_form_a_simplex() {
        let (xs, ys, _) = clusters(&[((0.0, 0.0), 1.0, 100), ((10.0, 10.0), 1.0, 100)], 11);
        let gm =
            GaussianMixture2d::fit_with_means(&xs, &ys, &[(0.0, 0.0), (10.0, 10.0)], 100, 1e-7)
                .unwrap();
        for probe in [(-1.0, -1.0), (5.0, 5.0), (11.0, 9.0)] {
            let r = gm.responsibilities(probe.0, probe.1);
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(r.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn correlated_clusters_get_nonzero_xy() {
        // Build a cluster stretched along y = x.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut state = 5u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..600 {
            let t = (next() - 0.5) * 20.0;
            xs.push(50.0 + t + (next() - 0.5));
            ys.push(50.0 + t + (next() - 0.5));
        }
        let gm = GaussianMixture2d::fit_with_means(&xs, &ys, &[(50.0, 50.0)], 100, 1e-9).unwrap();
        let c = gm.components()[0];
        let rho = c.cov.xy / (c.cov.xx * c.cov.yy).sqrt();
        assert!(rho > 0.9, "correlation {rho} should be strong");
    }

    #[test]
    fn weights_sum_to_one() {
        let (xs, ys, _) = clusters(&[((0.0, 0.0), 1.0, 300), ((20.0, 5.0), 1.0, 100)], 13);
        let gm = GaussianMixture2d::fit_with_means(&xs, &ys, &[(0.0, 0.0), (20.0, 5.0)], 100, 1e-7)
            .unwrap();
        let total: f64 = gm.components().iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Weights track the 3:1 split.
        assert!(gm.components()[0].weight > gm.components()[1].weight);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(GaussianMixture2d::fit_with_means(&[], &[], &[(0.0, 0.0)], 10, 1e-6).is_err());
        assert!(GaussianMixture2d::fit_with_means(&[1.0], &[1.0, 2.0], &[(0.0, 0.0)], 10, 1e-6)
            .is_err());
        assert!(GaussianMixture2d::fit_with_means(&[1.0, 2.0], &[1.0, 2.0], &[], 10, 1e-6).is_err());
        assert!(GaussianMixture2d::fit_with_means(
            &[1.0],
            &[1.0],
            &[(0.0, 0.0), (1.0, 1.0)],
            10,
            1e-6
        )
        .is_err());
        assert!(GaussianMixture2d::fit_with_means(
            &[f64::NAN, 1.0],
            &[1.0, 2.0],
            &[(0.0, 0.0)],
            10,
            1e-6
        )
        .is_err());
    }

    #[test]
    fn is_deterministic() {
        let (xs, ys, _) = clusters(&[((3.0, 4.0), 1.0, 120)], 17);
        let a = GaussianMixture2d::fit_with_means(&xs, &ys, &[(3.0, 4.0)], 50, 1e-8).unwrap();
        let b = GaussianMixture2d::fit_with_means(&xs, &ys, &[(3.0, 4.0)], 50, 1e-8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cov2_helpers() {
        let c = Cov2 { xx: 4.0, xy: 1.0, yy: 2.0 };
        assert_eq!(c.det(), 7.0);
        assert!(c.is_positive_definite());
        let bad = Cov2 { xx: 1.0, xy: 2.0, yy: 1.0 };
        assert!(!bad.is_positive_definite());
        let fixed = bad.regularized(0.5);
        assert!(fixed.is_positive_definite(), "{fixed:?}");
    }
}
