//! Descriptive statistics: moments, quantiles, and the paper's
//! *consistency factor* (§4.1).

use crate::error::{validate_sample, StatsError};
use crate::Result;

/// Arithmetic mean. Returns 0.0 only for an empty slice via [`mean`]'s
/// checked wrapper; prefer [`Summary`] for bulk statistics.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divides by `n`).
pub fn variance(data: &[f64]) -> f64 {
    if data.is_empty() {
        return f64::NAN;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Linearly-interpolated quantile of unsorted data, `q` in `[0, 1]`.
///
/// Matches the "linear" (type 7) definition used by NumPy's default, which
/// is what the paper's analysis stack would have used.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    validate_sample(data)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter { what: "quantile q", value: q });
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    Ok(quantile_sorted(&sorted, q))
}

/// Quantile of already-sorted data (ascending). Panics on empty input.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// The paper's per-user *consistency factor* (§4.1): the ratio of the mean
/// to the 95th percentile of a user's repeated measurements of one metric.
///
/// Values near 1 mean the user's tests are consistent; values well below 1
/// mean high variability. Upload speeds exhibit factors near 1 (median 0.87
/// in the paper), download speeds do not (median 0.58) — the observation that
/// motivates clustering on upload speed first.
pub fn consistency_factor(data: &[f64]) -> Result<f64> {
    validate_sample(data)?;
    let p95 = quantile(data, 0.95)?;
    if p95 == 0.0 {
        return Err(StatsError::InvalidParameter { what: "p95 (zero)", value: 0.0 });
    }
    Ok(mean(data) / p95)
}

/// Gini coefficient of a non-negative sample: 0 = perfect equality,
/// →1 = maximal inequality. The digital-divide literature the paper
/// motivates itself with (and its companion study [43]) summarizes
/// speed distributions this way; useful alongside medians in the
/// cross-city comparison.
pub fn gini(data: &[f64]) -> Result<f64> {
    validate_sample(data)?;
    if data.iter().any(|&v| v < 0.0) {
        return Err(StatsError::InvalidParameter {
            what: "negative value in gini input",
            value: data.iter().cloned().fold(f64::INFINITY, f64::min),
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return Ok(0.0); // everyone equally has nothing
    }
    // G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, i is 1-based.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    Ok((2.0 * weighted / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0))
}

/// A full five-number-plus summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary of `data`. Fails on empty or non-finite input.
    pub fn of(data: &[f64]) -> Result<Self> {
        validate_sample(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite"));
        Ok(Summary {
            count: sorted.len(),
            mean: mean(data),
            std_dev: std_dev(data),
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            max: *sorted.last().expect("non-empty"),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn mean_of_known_values() {
        assert_close(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_close(variance(&[5.0; 10]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // data: 2, 4, 4, 4, 5, 5, 7, 9 — classic example, population var = 4.
        assert_close(variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 4.0);
        assert_close(std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]), 2.0);
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let d = [3.0, 1.0, 4.0, 1.5, 9.0];
        assert_close(quantile(&d, 0.0).unwrap(), 1.0);
        assert_close(quantile(&d, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        // sorted: [0, 10]; q=0.25 -> 2.5
        assert_close(quantile(&[10.0, 0.0], 0.25).unwrap(), 2.5);
    }

    #[test]
    fn median_of_odd_sample() {
        assert_close(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_close(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn quantile_rejects_out_of_range_q() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn quantile_single_element() {
        assert_close(quantile(&[42.0], 0.73).unwrap(), 42.0);
    }

    #[test]
    fn consistency_factor_is_one_for_constant_series() {
        assert_close(consistency_factor(&[20.0; 8]).unwrap(), 1.0);
    }

    #[test]
    fn consistency_factor_drops_with_variability() {
        // A user whose download speed swings widely has a low factor.
        let stable = consistency_factor(&[95.0, 100.0, 98.0, 102.0, 99.0]).unwrap();
        let noisy = consistency_factor(&[10.0, 100.0, 20.0, 90.0, 15.0]).unwrap();
        assert!(stable > 0.95, "stable factor was {stable}");
        assert!(noisy < stable, "noisy {noisy} should be < stable {stable}");
    }

    #[test]
    fn consistency_factor_zero_p95_is_error() {
        assert!(consistency_factor(&[0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn consistency_factor_can_exceed_one() {
        // A heavy *lower* tail drags p95 below the mean? No — mean <= p95 in
        // that case. The paper notes factors > 1 for heavy-tailed data where
        // the mean is pulled above the p95 by extreme outliers beyond p95.
        let mut d = vec![10.0; 39];
        d.push(10_000.0); // one extreme outlier beyond the p95 cut
        let f = consistency_factor(&d).unwrap();
        assert!(f > 1.0, "factor {f} should exceed 1");
    }

    #[test]
    fn gini_of_equal_sample_is_zero() {
        assert!(gini(&[10.0; 25]).unwrap() < 1e-12);
    }

    #[test]
    fn gini_of_concentrated_sample_approaches_one() {
        let mut d = vec![0.0; 99];
        d.push(1000.0);
        let g = gini(&d).unwrap();
        assert!(g > 0.95, "gini {g}");
    }

    #[test]
    fn gini_known_value() {
        // {1, 3}: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
        let g = gini(&[1.0, 3.0]).unwrap();
        assert!((g - 0.25).abs() < 1e-12, "gini {g}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1.0, 2.0, 5.0, 9.0]).unwrap();
        let b = gini(&[10.0, 20.0, 50.0, 90.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gini_rejects_negative_and_empty() {
        assert!(gini(&[]).is_err());
        assert!(gini(&[-1.0, 2.0]).is_err());
        assert_eq!(gini(&[0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn summary_fields_are_ordered() {
        let s = Summary::of(&[5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]).unwrap();
        assert!(s.min <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.count, 7);
        assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn summary_rejects_empty() {
        assert!(Summary::of(&[]).is_err());
    }
}
