//! A real TCP speed test over loopback.
//!
//! The rest of the workspace measures *simulated* paths; this module is the
//! existence proof that the methodology gap is a property of TCP itself,
//! not of the simulator. It implements:
//!
//! * [`TokenBucket`] — a thread-safe byte-rate shaper,
//! * [`ShapedServer`] — a TCP server whose aggregate send (and read) rate
//!   is shaped to a configured plan rate, emulating the access link, and
//! * [`measure_download`] / [`measure_upload`] — clients that open one or
//!   many connections and report throughput with or without a ramp-up
//!   discard, mirroring the NDT and Ookla methodologies.
//!
//! The `loopback_speedtest` example and the integration tests drive this
//! end-to-end: a multi-connection client measures the shaped rate; the
//! measured value must sit just under the shaped plan rate.
//!
//! The client side is hardened against the failure modes real crowdsourced
//! clients see (DESIGN.md §"Fault taxonomy and supervision contract"):
//! connects retry with capped exponential backoff, the whole test runs
//! under an overall deadline so a stalled server cannot hang the caller,
//! and when only a subset of connections fail the test still reports the
//! survivors' throughput with [`WireResult::connections_failed`] recording
//! the casualties. All knobs live on [`WireOptions`]; the plain
//! [`measure_download`] / [`measure_upload`] entry points use defaults
//! scaled to the test duration.

use crate::fault::{FaultKind, FaultProfile};
use parking_lot::Mutex;
use st_obs::Registry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Protocol byte: client requests a download (server → client) stream.
const CMD_DOWNLOAD: u8 = b'D';
/// Protocol byte: client requests an upload (client → server) sink.
const CMD_UPLOAD: u8 = b'U';
/// Protocol byte: client requests a ping echo service.
const CMD_PING: u8 = b'P';
/// Protocol byte: a fault preamble follows — 8-byte session id (BE),
/// 1-byte attempt index, then the real command byte. Fault-enabled
/// servers look the session up in their [`FaultProfile`]; servers
/// without a profile serve the inner command healthily, so the load
/// harness works unchanged against a clean pool.
const CMD_FAULTED: u8 = b'F';
/// Bytes in the fault preamble after [`CMD_FAULTED`]: session + attempt.
const FAULT_HEADER: usize = 9;
/// Ping payload size, bytes (a sequence number).
const PING_PAYLOAD: usize = 8;
/// Transfer chunk size, bytes.
const CHUNK: usize = 16 * 1024;
/// Rate divisor applied by [`FaultKind::ThrottledSlowStart`].
const THROTTLE_FACTOR: f64 = 8.0;

/// Bucket bounds for per-connection byte histograms (1 KiB … 1 GiB).
const BYTES_BOUNDS: &[f64] =
    &[1024.0, 16384.0, 131072.0, 1048576.0, 16777216.0, 134217728.0, 1073741824.0];
/// Bucket bounds for backoff sleep histograms, seconds.
const BACKOFF_BOUNDS: &[f64] = &[0.05, 0.1, 0.2, 0.4, 0.8, 1.6];

/// The `dir` metric label for a protocol command byte.
fn dir_label(cmd: u8) -> &'static str {
    if cmd == CMD_UPLOAD {
        "up"
    } else {
        "down"
    }
}

/// A token bucket limiting aggregate bytes per second.
///
/// All server connections draw from one bucket, so the configured rate is
/// shared exactly like a provisioned access link is shared by the parallel
/// connections of one speed test.
#[derive(Debug)]
pub struct TokenBucket {
    state: Mutex<BucketState>,
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket delivering `mbps` megabits per second with `burst_ms`
    /// milliseconds of burst allowance.
    pub fn new(mbps: f64, burst_ms: f64) -> Self {
        assert!(mbps > 0.0, "rate must be positive");
        assert!(burst_ms >= 0.0, "burst must be non-negative");
        let rate = mbps * 1e6 / 8.0;
        TokenBucket {
            state: Mutex::new(BucketState { tokens: 0.0, last_refill: Instant::now() }),
            rate_bytes_per_sec: rate,
            burst_bytes: (rate * burst_ms / 1000.0).max(CHUNK as f64),
        }
    }

    /// The shaped rate in Mbps.
    pub fn rate_mbps(&self) -> f64 {
        self.rate_bytes_per_sec * 8.0 / 1e6
    }

    /// Block until `n` bytes of budget are available, then consume them.
    pub fn take(&self, n: usize) {
        loop {
            let wait = {
                let mut s = self.state.lock();
                let now = Instant::now();
                let elapsed = now.duration_since(s.last_refill).as_secs_f64();
                s.tokens = (s.tokens + elapsed * self.rate_bytes_per_sec)
                    .min(self.burst_bytes.max(n as f64));
                s.last_refill = now;
                if s.tokens >= n as f64 {
                    s.tokens -= n as f64;
                    None
                } else {
                    Some(Duration::from_secs_f64((n as f64 - s.tokens) / self.rate_bytes_per_sec))
                }
            };
            match wait {
                None => return,
                Some(d) => thread::sleep(d.min(Duration::from_millis(50))),
            }
        }
    }
}

/// A loopback speed-test server with shaped download and upload rates.
///
/// Shutdown (on drop) joins the accept thread *and* every per-connection
/// worker, so no thread or socket outlives the server — wire tests can't
/// leak past the test harness.
pub struct ShapedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    workers: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl ShapedServer {
    /// Start a server on an ephemeral loopback port, shaping downloads to
    /// `down_mbps` and uploads to `up_mbps` (aggregate across connections).
    pub fn start(down_mbps: f64, up_mbps: f64) -> std::io::Result<ShapedServer> {
        ShapedServer::start_configured(down_mbps, up_mbps, None)
    }

    /// [`ShapedServer::start`] with a [`FaultProfile`] installed: sessions
    /// announcing themselves via the fault preamble are served the fate the
    /// profile deals them (DESIGN.md §16). Connections without a preamble
    /// are always served healthily.
    pub fn start_with_faults(
        down_mbps: f64,
        up_mbps: f64,
        profile: FaultProfile,
    ) -> std::io::Result<ShapedServer> {
        ShapedServer::start_configured(down_mbps, up_mbps, Some(profile))
    }

    fn start_configured(
        down_mbps: f64,
        up_mbps: f64,
        profile: Option<FaultProfile>,
    ) -> std::io::Result<ShapedServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let down_bucket = Arc::new(TokenBucket::new(down_mbps, 40.0));
        let up_bucket = Arc::new(TokenBucket::new(up_mbps, 40.0));
        let workers: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let shutdown2 = Arc::clone(&shutdown);
        let workers2 = Arc::clone(&workers);
        let accept_thread = thread::spawn(move || {
            while !shutdown2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let down = Arc::clone(&down_bucket);
                        let up = Arc::clone(&up_bucket);
                        let stop = Arc::clone(&shutdown2);
                        let handle = thread::spawn(move || {
                            let _ = serve_connection(stream, &down, &up, &stop, profile.as_ref());
                        });
                        let mut ws = workers2.lock();
                        // Reap finished workers so the registry doesn't
                        // grow with every connection ever served.
                        ws.retain(|w| !w.is_finished());
                        ws.push(handle);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(ShapedServer { addr, shutdown, accept_thread: Some(accept_thread), workers })
    }

    /// The server's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ShapedServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread is gone, so no new workers can appear; join
        // every per-connection worker before returning.
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    down: &TokenBucket,
    up: &TokenBucket,
    stop: &AtomicBool,
    profile: Option<&FaultProfile>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(Duration::from_millis(200)))?;
    let mut cmd = [0u8; 1];
    stream.read_exact(&mut cmd)?;

    // Fault preamble: self-identified sessions get the fate the profile
    // deals them. `fault` is `(kind, chunks_before)` when this connection
    // belongs to a session whose fault is active on this attempt.
    let mut fault: Option<(FaultKind, u64)> = None;
    if cmd[0] == CMD_FAULTED {
        let mut header = [0u8; FAULT_HEADER];
        stream.read_exact(&mut header)?;
        let session = u64::from_be_bytes(header[..8].try_into().expect("8-byte slice"));
        let attempt = u32::from(header[8]);
        stream.read_exact(&mut cmd)?;
        if let Some(p) = profile {
            let plan = p.plan_for(session);
            fault = plan.active(attempt).map(|k| (k, u64::from(plan.chunks_before)));
        }
    }
    if matches!(fault, Some((FaultKind::RefuseConnect, _))) {
        // Emulated refusal: the connection dies before a single payload
        // byte, whatever service was asked for.
        return Ok(());
    }
    // ThrottledSlowStart serves the whole transfer from a private bucket
    // at a fraction of the shaped rate.
    let throttled = |shaped: &TokenBucket| {
        matches!(fault, Some((FaultKind::ThrottledSlowStart, _)))
            .then(|| TokenBucket::new((shaped.rate_mbps() / THROTTLE_FACTOR).max(0.1), 40.0))
    };

    let payload = [0x5au8; CHUNK];
    let mut sink = [0u8; CHUNK];
    match cmd[0] {
        CMD_DOWNLOAD => {
            // Stream shaped data until the client hangs up or we stop. A
            // stalled client only blocks until the write timeout, so the
            // worker always re-checks the stop flag and can be joined.
            let throttle = throttled(down);
            let mut served_chunks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match fault {
                    Some((FaultKind::AcceptThenReset | FaultKind::EarlyFin, n))
                        if served_chunks >= n =>
                    {
                        // Close after the planned chunks: a reset/early
                        // FIN mid-transfer, as seen by the client.
                        return Ok(());
                    }
                    Some((FaultKind::MidTransferStall, n)) if served_chunks >= n => {
                        // Go silent but hold the socket open; watch for
                        // the client hanging up so the worker still joins.
                        let mut probe = [0u8; 1];
                        match stream.read(&mut probe) {
                            Ok(0) => return Ok(()),
                            Ok(_) => {}
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut => {}
                            Err(_) => return Ok(()),
                        }
                        continue;
                    }
                    _ => {}
                }
                match &throttle {
                    Some(t) => t.take(CHUNK),
                    None => down.take(CHUNK),
                }
                match stream.write_all(&payload) {
                    Ok(()) => served_chunks += 1,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        }
        CMD_PING => {
            // Echo fixed-size payloads until the client hangs up. Pings
            // are not shaped: latency measurement must not compete with
            // the token bucket.
            let corrupt = matches!(fault, Some((FaultKind::CorruptEcho, _)));
            let mut ping_buf = [0u8; PING_PAYLOAD];
            while !stop.load(Ordering::Relaxed) {
                match stream.read_exact(&mut ping_buf) {
                    Ok(()) => {
                        if corrupt {
                            // Flip a byte: the client's integrity check
                            // must catch this and fail the attempt.
                            ping_buf[0] ^= 0xff;
                        }
                        if stream.write_all(&ping_buf).is_err() {
                            break;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        }
        CMD_UPLOAD => {
            // Read at the shaped rate; backpressure through the socket
            // buffer throttles the sender, like a shaped uplink.
            let throttle = throttled(up);
            let mut read_chunks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match fault {
                    Some((FaultKind::AcceptThenReset | FaultKind::EarlyFin, n))
                        if read_chunks >= n =>
                    {
                        return Ok(());
                    }
                    Some((FaultKind::MidTransferStall, n)) if read_chunks >= n => {
                        // Stop draining at the shaped rate: probe one
                        // byte per timeout tick, so the client's writes
                        // back up in the socket buffer but its eventual
                        // hangup is still noticed and the worker joins.
                        let mut probe = [0u8; 1];
                        match stream.read(&mut probe) {
                            Ok(0) => return Ok(()),
                            Ok(_) => {}
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut => {}
                            Err(_) => return Ok(()),
                        }
                        continue;
                    }
                    _ => {}
                }
                match &throttle {
                    Some(t) => t.take(CHUNK),
                    None => up.take(CHUNK),
                }
                match stream.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => read_chunks += 1,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                }
            }
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown command byte {other:#x}"),
            ));
        }
    }
    Ok(())
}

/// Outcome of a wire-level measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireResult {
    /// Whole-duration average, Mbps (NDT-style reporting).
    pub mean_all_mbps: f64,
    /// Average excluding the ramp, Mbps (Ookla-style reporting).
    pub mean_steady_mbps: f64,
    /// Connections that completed their transfer.
    pub connections: usize,
    /// Connections that failed (connect retries exhausted, mid-transfer
    /// error, no data received, or abandoned at the test deadline). The
    /// reported means come from the surviving connections only.
    pub connections_failed: usize,
}

/// Identifies one load-harness session (and retry attempt) to a
/// fault-enabled server. When set on [`WireOptions::session`], every
/// connection announces itself with the fault preamble so the server can
/// look the session up in its [`FaultProfile`]. Servers without a
/// profile ignore the tag and serve healthily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTag {
    /// The load-harness session id (the fault-schedule key).
    pub id: u64,
    /// The 0-based retry attempt this connection belongs to.
    pub attempt: u8,
}

/// Client-side robustness knobs for a wire test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireOptions {
    /// Connect attempts per connection before giving up on it.
    pub connect_attempts: u32,
    /// Backoff before the first reconnect; doubled per attempt, capped at
    /// [`WireOptions::connect_backoff_cap`].
    pub connect_backoff: Duration,
    /// Ceiling for the doubled backoff.
    pub connect_backoff_cap: Duration,
    /// Per-attempt TCP connect timeout.
    pub connect_timeout: Duration,
    /// Overall wall-clock budget for the whole test. Connections that
    /// have not reported by then are abandoned and counted as failed, so
    /// a stalled or unreachable server cannot hang the caller.
    pub deadline: Duration,
    /// When set, connections identify themselves to fault-enabled
    /// servers with this tag (the chaos-harness path). `None` — the
    /// default — sends the plain protocol.
    pub session: Option<SessionTag>,
}

impl Default for WireOptions {
    fn default() -> Self {
        WireOptions {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(50),
            connect_backoff_cap: Duration::from_millis(400),
            connect_timeout: Duration::from_secs(2),
            deadline: Duration::from_secs(30),
            session: None,
        }
    }
}

impl WireOptions {
    /// Defaults with the deadline scaled to a test of `duration`: three
    /// times the transfer window plus connect slack.
    pub fn for_duration(duration: Duration) -> Self {
        WireOptions { deadline: duration * 3 + Duration::from_secs(2), ..WireOptions::default() }
    }
}

/// Connect with bounded retries and capped exponential backoff. Every
/// retry bumps `wire.connect_retries`, drops a `wire.connect_retry`
/// lifecycle mark on the trace timeline, and its backoff sleep lands in
/// the `wire.backoff_sleep_s` histogram.
fn connect_with_retry(
    addr: SocketAddr,
    opts: &WireOptions,
    reg: &Registry,
    dir: &str,
) -> std::io::Result<TcpStream> {
    let labels = &[("dir", dir)];
    let mut backoff = opts.connect_backoff;
    let mut last_err = None;
    for attempt in 0..opts.connect_attempts.max(1) {
        if attempt > 0 {
            let attempt_str = attempt.to_string();
            reg.event(
                "wire.connect_retry",
                "lifecycle",
                &[("dir", dir), ("attempt", &attempt_str)],
            );
            reg.inc("wire.connect_retries", labels);
            reg.observe("wire.backoff_sleep_s", labels, backoff.as_secs_f64(), BACKOFF_BOUNDS);
            thread::sleep(backoff);
            backoff = (backoff * 2).min(opts.connect_backoff_cap);
        }
        match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("no connect attempts configured")))
}

/// Send the protocol handshake: the bare command byte, or — when a
/// [`SessionTag`] is set — the fault preamble (`'F'`, session id,
/// attempt) followed by the command, as one write.
fn handshake(stream: &mut TcpStream, cmd: u8, session: Option<SessionTag>) -> std::io::Result<()> {
    match session {
        None => stream.write_all(&[cmd]),
        Some(tag) => {
            let mut buf = [0u8; 2 + FAULT_HEADER];
            buf[0] = CMD_FAULTED;
            buf[1..9].copy_from_slice(&tag.id.to_be_bytes());
            buf[9] = tag.attempt;
            buf[10] = cmd;
            stream.write_all(&buf)
        }
    }
}

/// Measure download throughput against a [`ShapedServer`].
///
/// Opens `n_conns` connections, reads for `duration`, and reports both the
/// whole-duration average and the average excluding `ramp_discard`.
/// Robustness knobs come from [`WireOptions::for_duration`]; use
/// [`measure_download_with`] to override them.
pub fn measure_download(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
) -> std::io::Result<WireResult> {
    measure_download_with(
        addr,
        n_conns,
        duration,
        ramp_discard,
        &WireOptions::for_duration(duration),
    )
}

/// [`measure_download`] with explicit [`WireOptions`].
pub fn measure_download_with(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
    opts: &WireOptions,
) -> std::io::Result<WireResult> {
    run_wire_test(addr, n_conns, duration, ramp_discard, CMD_DOWNLOAD, opts, &Registry::disabled())
}

/// [`measure_download_with`] recording wire metrics into `reg`
/// (DESIGN.md §13): per-connection bytes, connect retries, backoff
/// sleeps, zero-data detections, and connection outcomes, all under a
/// `dir=down` label.
pub fn measure_download_observed(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
    opts: &WireOptions,
    reg: &Registry,
) -> std::io::Result<WireResult> {
    run_wire_test(addr, n_conns, duration, ramp_discard, CMD_DOWNLOAD, opts, reg)
}

/// Measure upload throughput against a [`ShapedServer`].
pub fn measure_upload(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
) -> std::io::Result<WireResult> {
    measure_upload_with(addr, n_conns, duration, ramp_discard, &WireOptions::for_duration(duration))
}

/// [`measure_upload`] with explicit [`WireOptions`].
pub fn measure_upload_with(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
    opts: &WireOptions,
) -> std::io::Result<WireResult> {
    run_wire_test(addr, n_conns, duration, ramp_discard, CMD_UPLOAD, opts, &Registry::disabled())
}

/// [`measure_upload_with`] recording wire metrics into `reg` under a
/// `dir=up` label.
pub fn measure_upload_observed(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
    opts: &WireOptions,
    reg: &Registry,
) -> std::io::Result<WireResult> {
    run_wire_test(addr, n_conns, duration, ramp_discard, CMD_UPLOAD, opts, reg)
}

/// Latency measured over the wire protocol's echo service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyResult {
    /// Minimum observed RTT, seconds.
    pub min_s: f64,
    /// Mean RTT, seconds.
    pub mean_s: f64,
    /// Maximum RTT, seconds.
    pub max_s: f64,
    /// Mean absolute deviation between consecutive RTTs (jitter), seconds.
    pub jitter_s: f64,
    /// Pings completed.
    pub count: usize,
}

/// Measure round-trip latency with `n_pings` echo exchanges.
///
/// Hardened like the transfer paths: the connect goes through the same
/// bounded retry/backoff machinery, the socket carries read *and* write
/// timeouts, and the whole exchange runs under [`WireOptions::deadline`]
/// — a server that accepts and then goes silent costs one timeout, not a
/// hung caller. Use [`measure_latency_with`] /
/// [`measure_latency_observed`] for explicit options or metrics.
pub fn measure_latency(addr: SocketAddr, n_pings: usize) -> std::io::Result<LatencyResult> {
    measure_latency_with(addr, n_pings, &WireOptions::default())
}

/// [`measure_latency`] with explicit [`WireOptions`].
pub fn measure_latency_with(
    addr: SocketAddr,
    n_pings: usize,
    opts: &WireOptions,
) -> std::io::Result<LatencyResult> {
    measure_latency_observed(addr, n_pings, opts, &Registry::disabled())
}

/// [`measure_latency_with`] recording connect retries and backoff sleeps
/// into `reg` under a `dir=ping` label.
pub fn measure_latency_observed(
    addr: SocketAddr,
    n_pings: usize,
    opts: &WireOptions,
    reg: &Registry,
) -> std::io::Result<LatencyResult> {
    assert!(n_pings >= 1, "need at least one ping");
    let start = Instant::now();
    let mut stream = connect_with_retry(addr, opts, reg, "ping")?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    handshake(&mut stream, CMD_PING, opts.session)?;

    let mut rtts = Vec::with_capacity(n_pings);
    let mut buf = [0u8; PING_PAYLOAD];
    for seq in 0..n_pings as u64 {
        if start.elapsed() > opts.deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "latency measurement deadline exceeded",
            ));
        }
        let payload = seq.to_be_bytes();
        let t0 = Instant::now();
        stream.write_all(&payload)?;
        stream.read_exact(&mut buf)?;
        if buf != payload {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "echo payload mismatch",
            ));
        }
        rtts.push(t0.elapsed().as_secs_f64());
    }

    let min_s = rtts.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_s = rtts.iter().cloned().fold(0.0f64, f64::max);
    let mean_s = rtts.iter().sum::<f64>() / rtts.len() as f64;
    let jitter_s = if rtts.len() < 2 {
        0.0
    } else {
        rtts.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (rtts.len() - 1) as f64
    };
    Ok(LatencyResult { min_s, mean_s, max_s, jitter_s, count: rtts.len() })
}

/// One measurement connection: connect (with retry), run the transfer
/// loop until `duration` or the shared abort flag, and account bytes into
/// the shared counters. A download connection that moves zero bytes is an
/// error — it contributed nothing and would silently dilute the result.
#[allow(clippy::too_many_arguments)]
fn run_one_connection(
    addr: SocketAddr,
    duration: Duration,
    ramp_discard: Duration,
    cmd: u8,
    opts: &WireOptions,
    start: Instant,
    total: &AtomicU64,
    steady: &AtomicU64,
    abort: &AtomicBool,
    reg: &Registry,
) -> std::io::Result<()> {
    let dir = dir_label(cmd);
    let labels = &[("dir", dir)];
    let mut stream = connect_with_retry(addr, opts, reg, dir)?;

    // Everything after a successful connect accounts its bytes, even on
    // an error exit — a reset connection is still one observation in the
    // per-connection histogram (with however many bytes it moved).
    let mut moved_total = 0u64;
    let outcome = (|| -> std::io::Result<()> {
        stream.set_nodelay(true)?;
        handshake(&mut stream, cmd, opts.session)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        stream.set_write_timeout(Some(Duration::from_millis(100)))?;
        let mut buf = [0u8; CHUNK];
        let payload = [0xa5u8; CHUNK];
        while start.elapsed() < duration && !abort.load(Ordering::Relaxed) {
            let moved = if cmd == CMD_DOWNLOAD {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => return Err(e),
                }
            } else {
                match stream.write(&payload) {
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => return Err(e),
                }
            };
            moved_total += moved as u64;
            total.fetch_add(moved as u64, Ordering::Relaxed);
            if start.elapsed() >= ramp_discard {
                steady.fetch_add(moved as u64, Ordering::Relaxed);
            }
        }
        Ok(())
    })();

    reg.add("wire.bytes", labels, moved_total);
    reg.observe("wire.connection_bytes", labels, moved_total as f64, BYTES_BOUNDS);
    if cmd == CMD_DOWNLOAD && moved_total == 0 {
        reg.inc("wire.zero_data_connections", labels);
    }
    outcome?;
    if cmd == CMD_DOWNLOAD && moved_total == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection received no data",
        ));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_wire_test(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
    cmd: u8,
    opts: &WireOptions,
    reg: &Registry,
) -> std::io::Result<WireResult> {
    assert!(n_conns >= 1, "need at least one connection");
    assert!(ramp_discard < duration, "discard must be shorter than the test");

    let total = Arc::new(AtomicU64::new(0));
    let steady = Arc::new(AtomicU64::new(0));
    let abort = Arc::new(AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel::<std::io::Result<()>>();
    let start = Instant::now();

    for _ in 0..n_conns {
        let total = Arc::clone(&total);
        let steady = Arc::clone(&steady);
        let abort = Arc::clone(&abort);
        let tx = tx.clone();
        let opts = *opts;
        let reg = reg.clone();
        thread::spawn(move || {
            let result = run_one_connection(
                addr,
                duration,
                ramp_discard,
                cmd,
                &opts,
                start,
                &total,
                &steady,
                &abort,
                &reg,
            );
            let _ = tx.send(result);
        });
    }
    drop(tx);

    // Collect per-connection outcomes under the overall deadline. When it
    // expires, raise the abort flag (workers poll it every socket-timeout
    // tick), grant one grace window for them to report, then count any
    // holdout as failed and abandon its detached thread.
    let mut connections = 0usize;
    let mut failed = 0usize;
    let mut last_err: Option<std::io::Error> = None;
    let mut pending = n_conns;
    let mut deadline_hit = false;
    while pending > 0 {
        let budget = if deadline_hit {
            Duration::from_millis(500)
        } else {
            opts.deadline.saturating_sub(start.elapsed())
        };
        match rx.recv_timeout(budget) {
            Ok(Ok(())) => {
                connections += 1;
                pending -= 1;
            }
            Ok(Err(e)) => {
                failed += 1;
                last_err = Some(e);
                pending -= 1;
            }
            Err(_) if !deadline_hit => {
                deadline_hit = true;
                reg.inc("wire.deadline_hits", &[("dir", dir_label(cmd))]);
                abort.store(true, Ordering::Relaxed);
            }
            Err(_) => {
                failed += pending;
                last_err = Some(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "wire test deadline exceeded",
                ));
                pending = 0;
            }
        }
    }

    let outcome_labels = &[("dir", dir_label(cmd))];
    reg.add("wire.connections_ok", outcome_labels, connections as u64);
    reg.add("wire.connections_failed", outcome_labels, failed as u64);

    if connections == 0 {
        return Err(last_err.unwrap_or_else(|| std::io::Error::other("all connections failed")));
    }
    let to_mbps = |bytes: u64, secs: f64| bytes as f64 * 8.0 / 1e6 / secs;
    Ok(WireResult {
        mean_all_mbps: to_mbps(total.load(Ordering::Relaxed), duration.as_secs_f64()),
        mean_steady_mbps: to_mbps(
            steady.load(Ordering::Relaxed),
            (duration - ramp_discard).as_secs_f64(),
        ),
        connections,
        connections_failed: failed,
    })
}

/// A complete wire-level test session: download + upload + latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSession {
    /// Download measurement.
    pub download: WireResult,
    /// Upload measurement.
    pub upload: WireResult,
    /// Idle latency (measured before the transfers).
    pub idle_latency: LatencyResult,
    /// Latency measured while the download ran (loaded latency).
    pub loaded_latency: LatencyResult,
}

/// Run a full session against a [`ShapedServer`]: idle pings, then a
/// download with concurrent pings (loaded latency), then an upload.
/// This is the wire-level equivalent of what the simulated methodologies
/// report, including the bufferbloat signal.
pub fn run_session(
    addr: SocketAddr,
    n_conns: usize,
    duration: Duration,
    ramp_discard: Duration,
) -> std::io::Result<WireSession> {
    let idle_latency = measure_latency(addr, 10)?;

    // Loaded latency: ping while the download saturates the shaped link.
    let ping_handle = {
        let ping_duration = duration;
        let opts = WireOptions::for_duration(duration);
        thread::spawn(move || -> std::io::Result<LatencyResult> {
            // Spread pings across the transfer window.
            let n = 10usize;
            let gap = ping_duration / (n as u32 + 1);
            let mut stream = connect_with_retry(addr, &opts, &Registry::disabled(), "ping")?;
            stream.set_nodelay(true)?;
            stream.set_write_timeout(Some(Duration::from_secs(2)))?;
            stream.write_all(&[CMD_PING])?;
            stream.set_read_timeout(Some(Duration::from_secs(2)))?;
            let mut rtts = Vec::with_capacity(n);
            let mut buf = [0u8; PING_PAYLOAD];
            for seq in 0..n as u64 {
                thread::sleep(gap);
                let payload = seq.to_be_bytes();
                let t0 = Instant::now();
                stream.write_all(&payload)?;
                stream.read_exact(&mut buf)?;
                rtts.push(t0.elapsed().as_secs_f64());
            }
            let min_s = rtts.iter().cloned().fold(f64::INFINITY, f64::min);
            let max_s = rtts.iter().cloned().fold(0.0f64, f64::max);
            let mean_s = rtts.iter().sum::<f64>() / rtts.len() as f64;
            let jitter_s = if rtts.len() < 2 {
                0.0
            } else {
                rtts.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (rtts.len() - 1) as f64
            };
            Ok(LatencyResult { min_s, mean_s, max_s, jitter_s, count: rtts.len() })
        })
    };
    let download = measure_download(addr, n_conns, duration, ramp_discard)?;
    let loaded_latency =
        ping_handle.join().map_err(|_| std::io::Error::other("ping thread panicked"))??;

    let upload = measure_upload(addr, n_conns.min(2), duration, ramp_discard)?;
    Ok(WireSession { download, upload, idle_latency, loaded_latency })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_enforces_rate() {
        // 80 Mbps = 10 MB/s; taking 2 MB should need ~0.2 s.
        let bucket = TokenBucket::new(80.0, 10.0);
        let start = Instant::now();
        for _ in 0..128 {
            bucket.take(CHUNK); // 128 * 16 KiB = 2 MiB
        }
        let secs = start.elapsed().as_secs_f64();
        let mbps = 128.0 * CHUNK as f64 * 8.0 / 1e6 / secs;
        assert!(mbps < 100.0, "shaped rate {mbps} way above 80 Mbps");
        assert!(mbps > 40.0, "shaped rate {mbps} way below 80 Mbps");
    }

    #[test]
    fn bucket_burst_allows_initial_spike() {
        let bucket = TokenBucket::new(8.0, 1000.0); // 1 s of burst = 1 MB
        thread::sleep(Duration::from_millis(300)); // accumulate some tokens
        let start = Instant::now();
        bucket.take(200 * 1024); // within accumulated burst
        assert!(start.elapsed() < Duration::from_millis(120));
    }

    #[test]
    fn bucket_reports_rate() {
        assert!((TokenBucket::new(123.0, 5.0).rate_mbps() - 123.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn bucket_rejects_zero_rate() {
        let _ = TokenBucket::new(0.0, 5.0);
    }

    #[test]
    fn loopback_download_measures_shaped_rate() {
        let server = ShapedServer::start(60.0, 10.0).unwrap();
        let res = measure_download(
            server.addr(),
            4,
            Duration::from_millis(1200),
            Duration::from_millis(300),
        )
        .unwrap();
        assert!(
            res.mean_steady_mbps > 35.0 && res.mean_steady_mbps < 75.0,
            "measured {res:?} against 60 Mbps shaping"
        );
    }

    #[test]
    fn loopback_upload_measures_shaped_rate() {
        let server = ShapedServer::start(100.0, 20.0).unwrap();
        let res = measure_upload(
            server.addr(),
            2,
            Duration::from_millis(1200),
            Duration::from_millis(300),
        )
        .unwrap();
        assert!(
            res.mean_steady_mbps > 10.0 && res.mean_steady_mbps < 40.0,
            "measured {res:?} against 20 Mbps shaping"
        );
    }

    #[test]
    fn multi_connection_shares_one_bucket() {
        // Aggregate throughput must track the shaped rate regardless of
        // connection count — the bucket is the access link.
        let server = ShapedServer::start(50.0, 10.0).unwrap();
        let one = measure_download(
            server.addr(),
            1,
            Duration::from_millis(900),
            Duration::from_millis(200),
        )
        .unwrap();
        let four = measure_download(
            server.addr(),
            4,
            Duration::from_millis(900),
            Duration::from_millis(200),
        )
        .unwrap();
        assert!(
            (four.mean_steady_mbps - one.mean_steady_mbps).abs()
                < 0.6 * one.mean_steady_mbps.max(four.mean_steady_mbps),
            "1 conn {one:?} vs 4 conn {four:?} should both track ~50 Mbps"
        );
    }

    #[test]
    fn ping_measures_loopback_latency() {
        let server = ShapedServer::start(50.0, 10.0).unwrap();
        let lat = measure_latency(server.addr(), 20).unwrap();
        assert_eq!(lat.count, 20);
        assert!(lat.min_s > 0.0);
        assert!(lat.min_s <= lat.mean_s && lat.mean_s <= lat.max_s);
        assert!(lat.mean_s < 0.05, "loopback RTT {} too high", lat.mean_s);
        assert!(lat.jitter_s >= 0.0);
    }

    #[test]
    fn ping_works_alongside_a_download() {
        // Latency measured while another client loads the shaped link.
        let server = ShapedServer::start(40.0, 10.0).unwrap();
        let addr = server.addr();
        let loader = thread::spawn(move || {
            measure_download(addr, 2, Duration::from_millis(800), Duration::from_millis(200))
        });
        thread::sleep(Duration::from_millis(100));
        let lat = measure_latency(addr, 10).unwrap();
        assert!(lat.count == 10);
        loader.join().unwrap().unwrap();
    }

    #[test]
    fn full_session_reports_all_four_measurements() {
        let server = ShapedServer::start(60.0, 12.0).unwrap();
        let s =
            run_session(server.addr(), 4, Duration::from_millis(1000), Duration::from_millis(250))
                .unwrap();
        assert!(s.download.mean_steady_mbps > 20.0, "{s:?}");
        assert!(s.upload.mean_steady_mbps > 3.0, "{s:?}");
        assert_eq!(s.idle_latency.count, 10);
        assert_eq!(s.loaded_latency.count, 10);
        // Loopback has no shaped queue on the ping path, so loaded latency
        // stays sane (scheduling noise only).
        assert!(s.loaded_latency.mean_s < 0.2);
    }

    #[test]
    fn shutdown_joins_workers_even_with_a_stalled_client() {
        // A client that starts a download and then never reads: the
        // connection worker parks in shaped writes. Dropping the server
        // must still join it promptly instead of leaking the thread.
        let server = ShapedServer::start(500.0, 10.0).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&[CMD_DOWNLOAD]).unwrap();
        thread::sleep(Duration::from_millis(150)); // let the worker start
        let t0 = Instant::now();
        drop(server);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown blocked on a stalled connection worker"
        );
        drop(stream);
    }

    #[test]
    fn refused_port_fails_after_bounded_retries() {
        // Bind and immediately drop a listener so the port refuses
        // connections; the client must exhaust its retries and return an
        // error quickly instead of hanging or succeeding.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let opts = WireOptions {
            connect_attempts: 3,
            connect_backoff: Duration::from_millis(10),
            deadline: Duration::from_secs(5),
            ..WireOptions::default()
        };
        let t0 = Instant::now();
        let res = measure_download_with(
            addr,
            2,
            Duration::from_millis(400),
            Duration::from_millis(100),
            &opts,
        );
        assert!(res.is_err(), "refused port produced {res:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "retries not bounded: took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn stalled_server_cannot_hang_the_test() {
        // A server that accepts but never sends a byte: every download
        // connection times out read after read until the transfer window
        // closes, then reports "no data". The caller gets an error within
        // the deadline instead of blocking forever.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = thread::spawn(move || {
            let mut held = Vec::new();
            for _ in 0..2 {
                if let Ok((s, _)) = listener.accept() {
                    held.push(s); // keep the sockets open, send nothing
                }
            }
            thread::sleep(Duration::from_millis(900));
            drop(held);
        });
        let opts = WireOptions { deadline: Duration::from_secs(3), ..WireOptions::default() };
        let t0 = Instant::now();
        let res = measure_download_with(
            addr,
            2,
            Duration::from_millis(500),
            Duration::from_millis(100),
            &opts,
        );
        assert!(res.is_err(), "a silent server produced data: {res:?}");
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "stalled server hung the test: {:?}",
            t0.elapsed()
        );
        stall.join().unwrap();
    }

    #[test]
    fn partial_connection_failure_still_reports_survivors() {
        // A one-shot server: the first accepted connection is served a
        // real download stream, later ones are closed immediately. The
        // test must report the surviving connection's throughput and count
        // the two casualties instead of failing wholesale.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let feeder = thread::spawn(move || {
                let mut cmd = [0u8; 1];
                if s.read_exact(&mut cmd).is_err() {
                    return;
                }
                let payload = [0x5au8; CHUNK];
                let t0 = Instant::now();
                while t0.elapsed() < Duration::from_millis(900) {
                    if s.write_all(&payload).is_err() {
                        break;
                    }
                }
            });
            for _ in 0..2 {
                if let Ok((s2, _)) = listener.accept() {
                    drop(s2); // refuse service: immediate close
                }
            }
            feeder.join().unwrap();
        });
        let res = measure_download(addr, 3, Duration::from_millis(600), Duration::from_millis(150))
            .unwrap();
        assert_eq!(res.connections, 1, "exactly one connection was served: {res:?}");
        assert_eq!(res.connections_failed, 2, "{res:?}");
        assert!(res.mean_all_mbps > 0.0, "survivor moved no data: {res:?}");
        server.join().unwrap();
    }

    #[test]
    fn healthy_test_reports_no_failed_connections() {
        let server = ShapedServer::start(80.0, 10.0).unwrap();
        let res = measure_download(
            server.addr(),
            3,
            Duration::from_millis(700),
            Duration::from_millis(200),
        )
        .unwrap();
        assert_eq!(res.connections, 3);
        assert_eq!(res.connections_failed, 0);
    }

    #[test]
    fn fault_preamble_without_a_profile_serves_healthily() {
        // Back-compat: a tagged client against a plain server must be
        // indistinguishable from an untagged one.
        let server = ShapedServer::start(60.0, 10.0).unwrap();
        let opts = WireOptions {
            session: Some(SessionTag { id: 7, attempt: 0 }),
            ..WireOptions::for_duration(Duration::from_millis(600))
        };
        let res = measure_download_with(
            server.addr(),
            2,
            Duration::from_millis(600),
            Duration::from_millis(150),
            &opts,
        )
        .unwrap();
        assert_eq!(res.connections_failed, 0, "{res:?}");
        assert!(res.mean_all_mbps > 0.0, "{res:?}");
        let lat = measure_latency_with(server.addr(), 5, &opts).unwrap();
        assert_eq!(lat.count, 5);
    }

    #[test]
    fn corrupt_echo_fault_is_detected_then_clears_after_its_window() {
        let profile = FaultProfile::new(11, 1.0);
        let sid = (0..500u64)
            .find(|&s| profile.plan_for(s).kind == Some(FaultKind::CorruptEcho))
            .expect("rate-1.0 profile deals every kind in 500 sessions");
        let server = ShapedServer::start_with_faults(50.0, 10.0, profile).unwrap();
        let faulted = WireOptions {
            session: Some(SessionTag { id: sid, attempt: 0 }),
            ..WireOptions::default()
        };
        let err = measure_latency_with(server.addr(), 3, &faulted).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
        // An attempt past the fault window is served clean — this is what
        // makes retried sessions recover deterministically.
        let recovered = WireOptions {
            session: Some(SessionTag {
                id: sid,
                attempt: profile.plan_for(sid).faulted_attempts as u8,
            }),
            ..WireOptions::default()
        };
        assert_eq!(measure_latency_with(server.addr(), 3, &recovered).unwrap().count, 3);
    }

    #[test]
    fn refuse_connect_fault_fails_the_download_attempt() {
        let profile = FaultProfile::new(3, 1.0);
        let sid = (0..500u64)
            .find(|&s| profile.plan_for(s).kind == Some(FaultKind::RefuseConnect))
            .unwrap();
        let server = ShapedServer::start_with_faults(50.0, 10.0, profile).unwrap();
        let opts = WireOptions {
            session: Some(SessionTag { id: sid, attempt: 0 }),
            ..WireOptions::for_duration(Duration::from_millis(400))
        };
        let res = measure_download_with(
            server.addr(),
            1,
            Duration::from_millis(400),
            Duration::from_millis(100),
            &opts,
        );
        assert!(res.is_err(), "refused session produced {res:?}");
    }

    #[test]
    fn early_fin_fault_degrades_but_survives() {
        let profile = FaultProfile::new(5, 1.0);
        let sid =
            (0..500u64).find(|&s| profile.plan_for(s).kind == Some(FaultKind::EarlyFin)).unwrap();
        let server = ShapedServer::start_with_faults(500.0, 10.0, profile).unwrap();
        let opts = WireOptions {
            session: Some(SessionTag { id: sid, attempt: 0 }),
            ..WireOptions::for_duration(Duration::from_millis(500))
        };
        let res = measure_download_with(
            server.addr(),
            1,
            Duration::from_millis(500),
            Duration::from_millis(100),
            &opts,
        )
        .unwrap();
        // The planned chunks moved, then a clean close: partial data, no
        // failure — the soft-fault contract (chunks_before ≥ 1 ⇒ bytes > 0).
        assert_eq!(res.connections, 1, "{res:?}");
        assert!(res.mean_all_mbps > 0.0, "{res:?}");
    }

    #[test]
    #[should_panic(expected = "discard must be shorter")]
    fn discard_longer_than_test_rejected() {
        let server = ShapedServer::start(10.0, 10.0).unwrap();
        let _ = measure_download(
            server.addr(),
            1,
            Duration::from_millis(100),
            Duration::from_millis(200),
        );
    }
}
