#![warn(missing_docs)]
//! Speed-test domain model and test methodologies.
//!
//! This crate holds everything that is "about speed tests" rather than
//! about networks or statistics:
//!
//! * [`plans`] — ISP subscription-plan catalogs ([`Plan`], [`PlanCatalog`],
//!   tier groups keyed by upload speed), the ground structure the BST
//!   methodology recovers from data.
//! * [`record`] — the [`Measurement`] schema: one speed test with its
//!   vendor, platform, QoS results, and the local-context metadata the
//!   paper argues must accompany every test.
//! * [`methodology`] — the [`Methodology`] trait plus the two vendor
//!   implementations: [`OoklaMethodology`] (multi-connection, ramp-up
//!   discarded) and [`NdtMethodology`] (single connection, whole-transfer
//!   average), run over `st-netsim` path snapshots.
//! * [`pairing`] — M-Lab's download/upload association: NDT reports the two
//!   directions as separate tests, so the paper pairs them with a 120 s
//!   window per client/server pair (§3.2); implemented here.
//! * [`store`] — the columnar [`CampaignStore`]: one campaign as typed
//!   columns with lazily memoized derived context (time bin, access
//!   class, WiFi band, memory class) and cheap composable row
//!   [`Selection`]s, so analyses scan contiguous columns instead of
//!   cloning `Vec<Measurement>` rows.
//! * [`segment`] — the [`SegmentedStore`]: sealed immutable segments
//!   (each a write-once [`CampaignStore`]) plus a mutable tail that
//!   absorbs appended measurement chunks, sanitizes them incrementally,
//!   and seals deterministically — the shared storage engine behind the
//!   batch repro and the incremental ingest front-end.
//! * [`sanitize`] — the record quarantine stage: every measurement
//!   entering an analysis is classified clean / repaired / quarantined
//!   against a structured error taxonomy, with per-reason counters, so
//!   dirty crowdsourced records degrade the dataset instead of crashing
//!   the pipeline.
//! * [`wire`] — a real TCP speed test over loopback sockets with a
//!   token-bucket-shaped server, demonstrating that the methodology gap is
//!   not an artifact of the flow-level simulator.
//! * [`fault`] — deterministic, seed-scheduled wire fault injection: a
//!   [`FaultProfile`] deals each session one of six failure modes as a
//!   pure function of `(seed, session id)`.
//! * [`retry`] — session-level capped-exponential [`BackoffSchedule`]
//!   with seeded jitter and a clock-free per-endpoint [`CircuitBreaker`].
//! * [`load`] — the chaos-hardened concurrent load harness: hundreds of
//!   sessions against a fault-injecting server pool, with retry, circuit
//!   breaking, and a [`LoadSummary`] whose counters are byte-identical
//!   across runs and parallelism levels.
//! * [`scoring`] — AIM-style application quality scores (streaming /
//!   gaming / conferencing) from a session's measured quality vector.

pub mod fault;
pub mod load;
pub mod methodology;
pub mod pairing;
pub mod plans;
pub mod record;
pub mod retry;
pub mod sanitize;
pub mod scoring;
pub mod segment;
pub mod store;
pub mod wire;

pub use fault::{FaultKind, FaultProfile, SessionFault, ALL_FAULT_KINDS};
pub use load::{run_load, LoadOptions, LoadSummary, PlannedOutcome, SessionReport};
pub use methodology::{FastMethodology, Methodology, NdtMethodology, OoklaMethodology, TestResult};
pub use pairing::{pair_ndt_tests, NdtEvent, NdtPair};
pub use plans::{Plan, PlanCatalog, TierGroup};
pub use record::{Access, Measurement, Platform, Vendor};
pub use retry::{Admission, BackoffSchedule, BreakerState, CircuitBreaker};
pub use sanitize::{
    classify, sanitize, sanitize_with_seen, Classification, QuarantineReason, RepairReason,
    SanitizeReport,
};
pub use scoring::{score, QualityScores, SessionQuality};
pub use segment::{ChunkStats, SegmentedStore, DEFAULT_SEAL_ROWS};
pub use st_dataframe::{FragCol, FragSelection, Selection};
pub use store::{AssignedColumns, CampaignStore, StoreError};
