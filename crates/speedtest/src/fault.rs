//! Deterministic, seed-scheduled wire fault injection (DESIGN.md §16).
//!
//! A [`FaultProfile`] turns a [`crate::wire::ShapedServer`] into a chaos
//! server: sessions it serves are deterministically assigned one of the
//! failure modes of [`FaultKind`]. The schedule is a **pure function of
//! `(profile seed, session id)`** — a SplitMix64 draw, never the accept
//! order — so the same profile installed on every server of a pool gives
//! every session the same fate no matter which server it lands on, at
//! what time, or under what `--parallelism`. The load harness
//! ([`crate::load`]) holds the same profile and derives the identical
//! plan client-side, which is what makes its summary counters
//! byte-identical across runs.
//!
//! Sessions identify themselves over the wire with a fault preamble
//! (command byte `'F'` + session id + attempt index); connections
//! without the preamble — every pre-existing client — are never
//! faulted, so a fault-enabled server still serves plain
//! [`crate::wire::measure_download`] traffic healthily.

/// SplitMix64 finalizer: a bijective avalanche over `u64`. Same
/// constants as the datagen parallel engine; duplicated here because
/// `st-speedtest` sits below `st-datagen` in the crate graph.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A uniform `f64` in `[0, 1)` from the top 53 bits of a SplitMix64 draw.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Stream tag mixed into every fault draw so fault schedules never
/// correlate with other SplitMix64 consumers sharing a master seed.
const FAULT_TAG: u64 = 0xfa17_5eed_0000_0001;

/// The wire-level failure modes a chaos server can inject.
///
/// Two classes matter to the client (DESIGN.md §16): **hard** faults
/// make the whole session attempt fail (nothing usable moved), so the
/// retry/backoff machinery engages; **soft** faults degrade the attempt
/// (partial or slowed data) but let it complete, so the session survives
/// with a degraded marker instead of retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Connection dropped before a single payload byte (emulated
    /// refusal: the listener must accept to see the preamble, then
    /// closes immediately). Hard.
    RefuseConnect,
    /// A few chunks served, then an abrupt close mid-transfer. Soft.
    AcceptThenReset,
    /// A few chunks served, then the server goes silent until the
    /// client's transfer window closes. Soft.
    MidTransferStall,
    /// A short but clean transfer: early FIN after a few chunks. Soft.
    EarlyFin,
    /// The whole transfer served at a fraction of the shaped rate. Soft.
    ThrottledSlowStart,
    /// Echo service returns corrupted ping payloads, which the client
    /// detects as an integrity failure. Hard.
    CorruptEcho,
}

/// Every kind, in schedule-draw order. The order is part of the
/// determinism contract: reordering re-deals every seeded schedule.
pub const ALL_FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::RefuseConnect,
    FaultKind::AcceptThenReset,
    FaultKind::MidTransferStall,
    FaultKind::EarlyFin,
    FaultKind::ThrottledSlowStart,
    FaultKind::CorruptEcho,
];

impl FaultKind {
    /// Whether the faulted attempt fails outright (vs degrades).
    pub fn is_hard(self) -> bool {
        matches!(self, FaultKind::RefuseConnect | FaultKind::CorruptEcho)
    }

    /// Stable label used in metric keys and ledger rows.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RefuseConnect => "refuse_connect",
            FaultKind::AcceptThenReset => "accept_then_reset",
            FaultKind::MidTransferStall => "mid_transfer_stall",
            FaultKind::EarlyFin => "early_fin",
            FaultKind::ThrottledSlowStart => "throttled_slow_start",
            FaultKind::CorruptEcho => "corrupt_echo",
        }
    }
}

/// The seeded fault policy installed on a chaos server (and mirrored by
/// the load harness). Which sessions fault, with which kind, and for how
/// many attempts, is decided by [`FaultProfile::plan_for`] alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Master seed of the schedule.
    pub seed: u64,
    /// Fraction of sessions assigned a fault, in `[0, 1]`.
    pub fault_rate: f64,
    /// Most attempts a hard fault stays active for. Drawn uniformly in
    /// `1..=max_faulted_attempts`; a session whose draw reaches its
    /// retry budget is abandoned, smaller draws recover on a retry.
    pub max_faulted_attempts: u32,
}

impl FaultProfile {
    /// A profile faulting `fault_rate` of sessions under `seed`, with
    /// hard faults active for 1–2 attempts.
    pub fn new(seed: u64, fault_rate: f64) -> FaultProfile {
        assert!((0.0..=1.0).contains(&fault_rate), "fault_rate must be in [0,1]");
        FaultProfile { seed, fault_rate, max_faulted_attempts: 2 }
    }

    /// The deterministic fault plan of session `session_id`: a pure
    /// function of `(seed, session_id)`, independent of servers, accept
    /// order, wall clocks, and parallelism.
    pub fn plan_for(&self, session_id: u64) -> SessionFault {
        let base = splitmix64(self.seed ^ splitmix64(session_id ^ FAULT_TAG));
        if unit_f64(base) >= self.fault_rate {
            return SessionFault::healthy();
        }
        let kind_draw = splitmix64(base ^ 0x01);
        let kind = ALL_FAULT_KINDS[(kind_draw % ALL_FAULT_KINDS.len() as u64) as usize];
        let attempts_draw = splitmix64(base ^ 0x02);
        let faulted_attempts = 1 + (attempts_draw % self.max_faulted_attempts.max(1) as u64) as u32;
        // Soft faults always move at least one chunk, so a soft-faulted
        // attempt deterministically survives (bytes > 0).
        let chunks_before = 1 + (splitmix64(base ^ 0x03) % 4) as u32;
        SessionFault { kind: Some(kind), faulted_attempts, chunks_before }
    }
}

/// One session's deterministic fate under a [`FaultProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionFault {
    /// The injected failure mode; `None` for a healthy session.
    pub kind: Option<FaultKind>,
    /// Attempts (0-based indices `0..faulted_attempts`) the fault stays
    /// active for; later attempts are served healthily.
    pub faulted_attempts: u32,
    /// Chunks served before a soft fault triggers (≥ 1).
    pub chunks_before: u32,
}

impl SessionFault {
    /// The no-fault plan.
    pub fn healthy() -> SessionFault {
        SessionFault { kind: None, faulted_attempts: 0, chunks_before: 0 }
    }

    /// The fault active on `attempt` (0-based), if any.
    pub fn active(&self, attempt: u32) -> Option<FaultKind> {
        match self.kind {
            Some(k) if attempt < self.faulted_attempts => Some(k),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_session() {
        let p = FaultProfile::new(42, 0.5);
        for s in 0..200u64 {
            assert_eq!(p.plan_for(s), p.plan_for(s), "plan must be deterministic");
        }
        let other_seed = FaultProfile::new(43, 0.5);
        assert!(
            (0..200).any(|s| p.plan_for(s) != other_seed.plan_for(s)),
            "different seeds must deal different schedules"
        );
    }

    #[test]
    fn fault_rate_bounds_are_respected() {
        let never = FaultProfile::new(7, 0.0);
        assert!((0..500).all(|s| never.plan_for(s).kind.is_none()));
        let always = FaultProfile::new(7, 1.0);
        assert!((0..500).all(|s| always.plan_for(s).kind.is_some()));
        let half = FaultProfile::new(7, 0.5);
        let faulted = (0..2000).filter(|&s| half.plan_for(s).kind.is_some()).count();
        assert!(
            (700..1300).contains(&faulted),
            "rate 0.5 dealt {faulted}/2000 faults — schedule draw is biased"
        );
    }

    #[test]
    fn every_kind_appears_and_soft_faults_move_data() {
        let p = FaultProfile::new(1, 1.0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..500u64 {
            let f = p.plan_for(s);
            let kind = f.kind.expect("rate 1.0 faults every session");
            seen.insert(kind);
            assert!((1..=p.max_faulted_attempts).contains(&f.faulted_attempts));
            assert!(f.chunks_before >= 1, "soft faults must serve at least one chunk");
        }
        assert_eq!(seen.len(), ALL_FAULT_KINDS.len(), "missing kinds: {seen:?}");
    }

    #[test]
    fn active_window_covers_exactly_the_faulted_attempts() {
        let f = SessionFault {
            kind: Some(FaultKind::RefuseConnect),
            faulted_attempts: 2,
            chunks_before: 1,
        };
        assert_eq!(f.active(0), Some(FaultKind::RefuseConnect));
        assert_eq!(f.active(1), Some(FaultKind::RefuseConnect));
        assert_eq!(f.active(2), None);
        assert_eq!(SessionFault::healthy().active(0), None);
    }

    #[test]
    #[should_panic(expected = "fault_rate")]
    fn out_of_range_rate_is_rejected() {
        let _ = FaultProfile::new(0, 1.5);
    }
}
