//! Columnar campaign store: one typed-column representation of a
//! measurement campaign, shared from data generation to report rendering.
//!
//! The paper's contextualization analyses are all slices of the same
//! corpus — by platform, tier, access type, WiFi band, hour, and memory
//! (PAPER §4–§6). Row-oriented `Vec<Measurement>` scans forced every
//! figure module to re-walk the campaign with its own
//! `iter().filter().collect()` chain and clone rows along the way. A
//! [`CampaignStore`] instead holds each campaign as contiguous columns
//! (`f64` / `u8` / small enums) so a figure expresses
//! "Android + WiFi-2.4GHz + tier k" as one predicate pass producing a
//! [`Selection`], then gathers just the column it needs.
//!
//! Three kinds of columns live here:
//!
//! * **Base columns** — copied straight out of the [`Measurement`]s at
//!   construction (`down`, `up`, `hour`, `access`, …).
//! * **Derived columns** — pure functions of base columns (time bin,
//!   month, access class, WiFi band, memory class, per-platform
//!   selections). They are computed lazily on first use and memoized in
//!   `OnceLock`s; because each is a deterministic function of immutable
//!   base columns, materializing them from any thread (or in parallel
//!   across campaigns) yields bit-identical results.
//! * **Assigned columns** — the BST fit outputs (tier, plan cap, tier
//!   group, plan-normalized download) scattered onto the store exactly
//!   once via [`CampaignStore::set_assignments`] after the models fit.
//!
//! Determinism contract: selections keep row indices ascending, so a
//! gather through a selection visits rows in the same order as the
//! classic `iter().enumerate().filter()` chain — downstream statistics
//! and rendered artifacts stay byte-identical to the row-oriented code
//! this replaces.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use st_dataframe::{Column, DataFrame, Selection, Shared};
use st_netsim::MemoryClass;

use crate::plans::PlanCatalog;
use crate::record::{Access, Measurement, Platform};

/// Typed error for store mutations that violate a structural invariant.
///
/// The monolithic store used to panic on these; the segmented store's
/// incremental reseal paths need them recoverable, so every mutation
/// entry point surfaces one of these variants instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// `set_assignments` was called on a store that already has
    /// assignments — they are write-once by design.
    AssignmentsAlreadySet,
    /// A scattered column does not cover every row of the store.
    LengthMismatch {
        /// Which column was the wrong length.
        column: &'static str,
        /// Rows in the store.
        expected: usize,
        /// Rows in the offered column.
        got: usize,
    },
    /// An append was attempted on a store already frozen by
    /// `SegmentedStore::freeze`.
    Frozen,
    /// A read that requires sealed data (assignments, full-column views)
    /// was attempted before `SegmentedStore::freeze`.
    NotFrozen,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::AssignmentsAlreadySet => {
                write!(f, "set_assignments called twice on one store")
            }
            StoreError::LengthMismatch { column, expected, got } => {
                write!(f, "{column} column must cover every row (expected {expected}, got {got})")
            }
            StoreError::Frozen => write!(f, "store is frozen: no further appends accepted"),
            StoreError::NotFrozen => write!(f, "store must be frozen before this operation"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Access-class code: the platform reported no access medium.
pub const ACCESS_UNKNOWN: u8 = 0;
/// Access-class code: WiFi (band/RSSI metadata lives in separate columns).
pub const ACCESS_WIFI: u8 = 1;
/// Access-class code: wired Ethernet.
pub const ACCESS_ETHERNET: u8 = 2;

/// WiFi-band code: not a WiFi measurement.
pub const BAND_NONE: u8 = 0;
/// WiFi-band code: 2.4 GHz.
pub const BAND_2_4: u8 = 1;
/// WiFi-band code: 5 GHz.
pub const BAND_5: u8 = 2;

/// Memory-class code for "platform reported no memory".
pub const MEMORY_NONE: u8 = 0;

/// Number of distinct [`Platform`] variants (including MBA units).
pub const N_PLATFORMS: usize = 7;

/// Dense code for a platform, used to index per-platform selections.
pub fn platform_code(p: Platform) -> usize {
    match p {
        Platform::AndroidApp => 0,
        Platform::IosApp => 1,
        Platform::DesktopWifiApp => 2,
        Platform::DesktopEthernetApp => 3,
        Platform::Web => 4,
        Platform::NdtWeb => 5,
        Platform::MbaUnit => 6,
    }
}

/// Dense code for a memory class: `1 + index` in [`MemoryClass::all`]
/// order (so [`MEMORY_NONE`] stays 0 for unreported memory).
pub fn memory_code(class: MemoryClass) -> u8 {
    1 + MemoryClass::all().iter().position(|c| *c == class).expect("class listed in all()") as u8
}

/// BST fit outputs scattered onto the store (one entry per row).
///
/// All vectors are parallel to the base columns. Rows the fit never
/// assigned carry `None` / `-1` / NaN, so every consumer can branch on
/// one column instead of re-deriving "was this row assigned".
pub struct AssignedColumns {
    /// Assigned subscription tier (1-based into the plan catalog).
    pub tier: Vec<Option<usize>>,
    /// Index of the matched upload cap in `catalog.upload_caps()`, or -1.
    pub upload_cap_idx: Vec<i32>,
    /// Index of the tier group containing the assigned tier, or -1.
    pub group_idx: Vec<i32>,
    /// Advertised download speed of the assigned tier's plan (NaN if
    /// unassigned).
    pub plan_down: Vec<f64>,
    /// Download normalized by the plan speed, clamped to `[0, 1]`
    /// (NaN if unassigned), as in the paper's figures.
    pub normalized_down: Vec<f64>,
    /// Memoized selection of rows per tier group (ascending group index).
    pub group_sels: Vec<Selection>,
    /// Memoized selection of rows per upload cap (ascending cap index).
    pub cap_sels: Vec<Selection>,
}

/// Lazily built, memoized derived columns (pure functions of the base
/// columns). The `builds` counter counts column-family initializations
/// so tests can assert each family is computed exactly once.
#[derive(Default)]
struct DerivedColumns {
    builds: AtomicUsize,
    time_bin: OnceLock<Vec<u8>>,
    month: OnceLock<Vec<u8>>,
    access_class: OnceLock<Vec<u8>>,
    wifi_band: OnceLock<Vec<u8>>,
    rssi_dbm: OnceLock<Vec<f64>>,
    memory_class: OnceLock<Vec<u8>>,
    platform_sels: OnceLock<Vec<Selection>>,
    native_sel: OnceLock<Selection>,
}

/// One measurement campaign as typed columns.
///
/// The `f64` base columns are [`Shared`] (copy-on-write): exporting them
/// through [`CampaignStore::to_frame`] aliases the store's storage with an
/// `Arc` bump instead of cloning ~n·5 floats per caller.
pub struct CampaignStore {
    id: Vec<u64>,
    user_id: Vec<u64>,
    platform: Vec<Platform>,
    city: Vec<u8>,
    day: Vec<u16>,
    hour: Vec<u8>,
    down: Shared<f64>,
    up: Shared<f64>,
    rtt: Shared<f64>,
    loaded_rtt: Shared<f64>,
    access: Vec<Access>,
    kernel_memory_gb: Shared<f64>,
    truth_tier: Vec<Option<usize>>,
    derived: DerivedColumns,
    assigned: OnceLock<AssignedColumns>,
}

impl CampaignStore {
    /// Build the base columns from a slice of measurements.
    pub fn from_measurements(ms: &[Measurement]) -> Self {
        let n = ms.len();
        let mut id = Vec::with_capacity(n);
        let mut user_id = Vec::with_capacity(n);
        let mut platform = Vec::with_capacity(n);
        let mut city = Vec::with_capacity(n);
        let mut day = Vec::with_capacity(n);
        let mut hour = Vec::with_capacity(n);
        let mut down = Vec::with_capacity(n);
        let mut up = Vec::with_capacity(n);
        let mut rtt = Vec::with_capacity(n);
        let mut loaded_rtt = Vec::with_capacity(n);
        let mut access = Vec::with_capacity(n);
        let mut kernel_memory_gb = Vec::with_capacity(n);
        let mut truth_tier = Vec::with_capacity(n);
        for m in ms {
            id.push(m.id);
            user_id.push(m.user_id);
            platform.push(m.platform);
            city.push(m.city);
            day.push(m.day);
            hour.push(m.hour);
            down.push(m.down_mbps);
            up.push(m.up_mbps);
            rtt.push(m.rtt_ms);
            loaded_rtt.push(m.loaded_rtt_ms);
            access.push(m.access);
            kernel_memory_gb.push(m.kernel_memory_gb.unwrap_or(f64::NAN));
            truth_tier.push(m.truth_tier);
        }
        CampaignStore {
            id,
            user_id,
            platform,
            city,
            day,
            hour,
            down: down.into(),
            up: up.into(),
            rtt: rtt.into(),
            loaded_rtt: loaded_rtt.into(),
            access,
            kernel_memory_gb: kernel_memory_gb.into(),
            truth_tier,
            derived: DerivedColumns::default(),
            assigned: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// True when the campaign has no rows.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// Test ids.
    pub fn id(&self) -> &[u64] {
        &self.id
    }

    /// Per-user ids.
    pub fn user_id(&self) -> &[u64] {
        &self.user_id
    }

    /// Platform per row.
    pub fn platform(&self) -> &[Platform] {
        &self.platform
    }

    /// City index per row.
    pub fn city(&self) -> &[u8] {
        &self.city
    }

    /// Day of year per row.
    pub fn day(&self) -> &[u16] {
        &self.day
    }

    /// Local hour per row.
    pub fn hour(&self) -> &[u8] {
        &self.hour
    }

    /// Download speeds, Mbps.
    pub fn down(&self) -> &[f64] {
        &self.down
    }

    /// Upload speeds, Mbps.
    pub fn up(&self) -> &[f64] {
        &self.up
    }

    /// Idle round-trip times, ms.
    pub fn rtt(&self) -> &[f64] {
        &self.rtt
    }

    /// Loaded round-trip times, ms.
    pub fn loaded_rtt(&self) -> &[f64] {
        &self.loaded_rtt
    }

    /// Access medium per row.
    pub fn access(&self) -> &[Access] {
        &self.access
    }

    /// Kernel memory, GB (NaN when the platform reported none).
    pub fn kernel_memory_gb(&self) -> &[f64] {
        &self.kernel_memory_gb
    }

    /// Ground-truth tier per row (generator-known; evaluation only).
    pub fn truth_tier(&self) -> &[Option<usize>] {
        &self.truth_tier
    }

    // ---- derived columns (lazy, memoized) -------------------------------

    /// Six-hour time-of-day bin per row (0..4), as in Figs. 11–12.
    pub fn time_bin(&self) -> &[u8] {
        self.derived.time_bin.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.hour.iter().map(|&h| (h % 24) / 6).collect()
        })
    }

    /// Month index per row (0..12), as in the §5.2 consistency analysis.
    pub fn month(&self) -> &[u8] {
        self.derived.month.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.day.iter().map(|&d| crate::record::month_of_day(d) as u8).collect()
        })
    }

    /// Access class per row ([`ACCESS_UNKNOWN`] / [`ACCESS_WIFI`] /
    /// [`ACCESS_ETHERNET`]).
    pub fn access_class(&self) -> &[u8] {
        self.derived.access_class.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.access
                .iter()
                .map(|a| match a {
                    Access::Wifi { .. } => ACCESS_WIFI,
                    Access::Ethernet => ACCESS_ETHERNET,
                    Access::Unknown => ACCESS_UNKNOWN,
                })
                .collect()
        })
    }

    /// WiFi band per row ([`BAND_NONE`] / [`BAND_2_4`] / [`BAND_5`]).
    pub fn wifi_band(&self) -> &[u8] {
        self.derived.wifi_band.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.access
                .iter()
                .map(|a| match a {
                    Access::Wifi { band: st_netsim::Band::G2_4, .. } => BAND_2_4,
                    Access::Wifi { band: st_netsim::Band::G5, .. } => BAND_5,
                    _ => BAND_NONE,
                })
                .collect()
        })
    }

    /// WiFi RSSI per row, dBm (NaN for non-WiFi rows).
    pub fn rssi_dbm(&self) -> &[f64] {
        self.derived.rssi_dbm.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.access
                .iter()
                .map(|a| match a {
                    Access::Wifi { rssi_dbm, .. } => *rssi_dbm,
                    _ => f64::NAN,
                })
                .collect()
        })
    }

    /// Memory-class code per row ([`MEMORY_NONE`] when unreported,
    /// otherwise `1 + index` in [`MemoryClass::all`] order; see
    /// [`memory_code`]).
    pub fn memory_class(&self) -> &[u8] {
        self.derived.memory_class.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            self.kernel_memory_gb
                .iter()
                .map(
                    |&gb| {
                        if gb.is_nan() {
                            MEMORY_NONE
                        } else {
                            memory_code(MemoryClass::from_gb(gb))
                        }
                    },
                )
                .collect()
        })
    }

    /// Memoized selection of this platform's rows (ascending row order).
    /// All per-platform selections are built in one pass over the store.
    pub fn platform_sel(&self, platform: Platform) -> &Selection {
        let sels = self.derived.platform_sels.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); N_PLATFORMS];
            for (i, p) in self.platform.iter().enumerate() {
                buckets[platform_code(*p)].push(i as u32);
            }
            buckets.into_iter().map(Selection::from_sorted).collect()
        });
        &sels[platform_code(platform)]
    }

    /// Memoized selection of native-app rows (platforms with device
    /// metadata, i.e. everything but the web portals and MBA units).
    pub fn native_sel(&self) -> &Selection {
        self.derived.native_sel.get_or_init(|| {
            self.derived.builds.fetch_add(1, Ordering::Relaxed);
            Selection::from_pred(self.len(), |i| self.platform[i].has_device_metadata())
        })
    }

    /// Force every lazy derived column, so later figure passes only read.
    /// Safe to call from any thread: each family is a pure function of
    /// the immutable base columns.
    pub fn materialize_derived(&self) {
        self.time_bin();
        self.month();
        self.access_class();
        self.wifi_band();
        self.rssi_dbm();
        self.memory_class();
        self.platform_sel(Platform::Web);
        self.native_sel();
    }

    /// How many derived column families have been built so far (for
    /// memoization tests: each family must be computed exactly once).
    pub fn derived_builds(&self) -> usize {
        self.derived.builds.load(Ordering::Relaxed)
    }

    /// Record the store's shape into a metrics registry under `labels`
    /// (deterministic class, DESIGN.md §13): `store.rows` counts this
    /// store's rows and `store.derived_builds` the derived column
    /// families built so far — the memoization contract says that is at
    /// most one build per family no matter how many readers raced.
    pub fn observe(&self, reg: &st_obs::Registry, labels: &[(&str, &str)]) {
        if !reg.is_enabled() {
            return;
        }
        reg.add("store.rows", labels, self.len() as u64);
        reg.add("store.derived_builds", labels, self.derived_builds() as u64);
    }

    // ---- assigned columns (written once after the BST fit) --------------

    /// Scatter BST fit outputs onto the store. `tier[i]` is the assigned
    /// tier of row `i`; `upload_cap_idx[i]` indexes
    /// `catalog.upload_caps()` (-1 when unmatched). Derives the group
    /// index, plan speed, and normalized download per row plus memoized
    /// per-group and per-cap selections.
    ///
    /// Errors with [`StoreError::AssignmentsAlreadySet`] if called twice
    /// (assignments are write-once by design) and
    /// [`StoreError::LengthMismatch`] when a column does not cover every
    /// row; the store is unchanged on error.
    pub fn set_assignments(
        &self,
        tier: Vec<Option<usize>>,
        upload_cap_idx: Vec<i32>,
        catalog: &PlanCatalog,
    ) -> Result<(), StoreError> {
        if tier.len() != self.len() {
            return Err(StoreError::LengthMismatch {
                column: "tier",
                expected: self.len(),
                got: tier.len(),
            });
        }
        if upload_cap_idx.len() != self.len() {
            return Err(StoreError::LengthMismatch {
                column: "upload_cap_idx",
                expected: self.len(),
                got: upload_cap_idx.len(),
            });
        }
        let groups = catalog.tier_groups();
        let n_caps = catalog.upload_caps().len();
        // Tier -> containing group, precomputed once (tiers are 1-based).
        let tier_group: Vec<i32> = (0..=catalog.len())
            .map(|t| {
                groups.iter().position(|g| g.tiers.contains(&t)).map(|g| g as i32).unwrap_or(-1)
            })
            .collect();

        let mut group_idx = vec![-1i32; self.len()];
        let mut plan_down = vec![f64::NAN; self.len()];
        let mut normalized_down = vec![f64::NAN; self.len()];
        let mut group_rows: Vec<Vec<u32>> = vec![Vec::new(); groups.len()];
        let mut cap_rows: Vec<Vec<u32>> = vec![Vec::new(); n_caps];
        for i in 0..self.len() {
            if let Some(t) = tier[i] {
                group_idx[i] = tier_group.get(t).copied().unwrap_or(-1);
                if group_idx[i] >= 0 {
                    group_rows[group_idx[i] as usize].push(i as u32);
                }
                if let Some(plan) = catalog.plan(t) {
                    plan_down[i] = plan.down.0;
                    normalized_down[i] = (self.down[i] / plan.down.0).clamp(0.0, 1.0);
                }
            }
            let c = upload_cap_idx[i];
            if c >= 0 {
                cap_rows[c as usize].push(i as u32);
            }
        }
        let assigned = AssignedColumns {
            tier,
            upload_cap_idx,
            group_idx,
            plan_down,
            normalized_down,
            group_sels: group_rows.into_iter().map(Selection::from_sorted).collect(),
            cap_sels: cap_rows.into_iter().map(Selection::from_sorted).collect(),
        };
        match self.assigned.set(assigned) {
            Ok(()) => Ok(()),
            Err(_) => Err(StoreError::AssignmentsAlreadySet),
        }
    }

    /// The assigned columns. Panics if [`CampaignStore::set_assignments`]
    /// has not run yet — analyses always scatter assignments (possibly
    /// all-`None`) right after fitting.
    pub fn assigned(&self) -> &AssignedColumns {
        self.assigned.get().expect("set_assignments must run before reading assigned columns")
    }

    /// Whether assignments have been scattered yet.
    pub fn has_assignments(&self) -> bool {
        self.assigned.get().is_some()
    }

    /// Count rows per upload cap within `sel`, in one pass (replaces the
    /// per-figure O(n·caps) `members_of` scans of Tables 3–4).
    pub fn cap_counts(&self, sel: &Selection) -> Vec<usize> {
        let caps = &self.assigned().upload_cap_idx;
        let mut counts = vec![0usize; self.assigned().cap_sels.len()];
        for i in sel.iter() {
            if caps[i] >= 0 {
                counts[caps[i] as usize] += 1;
            }
        }
        counts
    }

    // ---- interop --------------------------------------------------------

    /// Convert the campaign to a data frame with one column per record
    /// field (the canonical CSV-export schema). Missing numeric metadata
    /// becomes NaN; missing tier truth becomes -1.
    ///
    /// The five `f64` columns (`down_mbps`, `up_mbps`, `rtt_ms`,
    /// `loaded_rtt_ms`, `memory_gb`) alias the store's [`Shared`] storage
    /// — an `Arc` bump per column, zero float copies. Mutating the frame
    /// copy detaches it (copy-on-write), so the store stays immutable.
    pub fn to_frame(&self) -> DataFrame {
        let n = self.len();
        let mut access = Vec::with_capacity(n);
        let mut band = Vec::with_capacity(n);
        let mut rssi = Vec::with_capacity(n);
        for a in &self.access {
            let (cls, b, r) = match a {
                Access::Wifi { band, rssi_dbm } => ("wifi", band.label(), *rssi_dbm),
                Access::Ethernet => ("ethernet", "", f64::NAN),
                Access::Unknown => ("unknown", "", f64::NAN),
            };
            access.push(cls.to_string());
            band.push(b.to_string());
            rssi.push(r);
        }
        DataFrame::from_columns([
            ("id", Column::I64(self.id.iter().map(|&v| v as i64).collect())),
            ("user_id", Column::I64(self.user_id.iter().map(|&v| v as i64).collect())),
            (
                "platform",
                Column::Str(self.platform.iter().map(|p| p.label().to_string()).collect()),
            ),
            (
                "vendor",
                Column::Str(self.platform.iter().map(|p| p.vendor().label().to_string()).collect()),
            ),
            ("city", Column::I64(self.city.iter().map(|&v| v as i64).collect())),
            ("day", Column::I64(self.day.iter().map(|&v| v as i64).collect())),
            ("hour", Column::I64(self.hour.iter().map(|&v| v as i64).collect())),
            ("down_mbps", Column::F64(self.down.clone())),
            ("up_mbps", Column::F64(self.up.clone())),
            ("rtt_ms", Column::F64(self.rtt.clone())),
            ("loaded_rtt_ms", Column::F64(self.loaded_rtt.clone())),
            ("access", Column::Str(access)),
            ("band", Column::Str(band)),
            ("rssi_dbm", Column::F64(rssi.into())),
            ("memory_gb", Column::F64(self.kernel_memory_gb.clone())),
            (
                "truth_tier",
                Column::I64(
                    self.truth_tier.iter().map(|t| t.map(|v| v as i64).unwrap_or(-1)).collect(),
                ),
            ),
        ])
        .expect("columns constructed with equal lengths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_netsim::Band;

    fn m(id: u64, platform: Platform, down: f64, up: f64, access: Access) -> Measurement {
        Measurement {
            id,
            user_id: id % 3,
            platform,
            city: 0,
            day: (id % 365) as u16,
            hour: (id % 24) as u8,
            down_mbps: down,
            up_mbps: up,
            rtt_ms: 10.0,
            loaded_rtt_ms: 12.0,
            access,
            kernel_memory_gb: if platform == Platform::AndroidApp { Some(3.0) } else { None },
            truth_tier: None,
        }
    }

    fn sample() -> Vec<Measurement> {
        vec![
            m(0, Platform::AndroidApp, 80.0, 9.0, Access::Wifi { band: Band::G5, rssi_dbm: -40.0 }),
            m(1, Platform::Web, 90.0, 9.5, Access::Unknown),
            m(
                2,
                Platform::AndroidApp,
                20.0,
                2.0,
                Access::Wifi { band: Band::G2_4, rssi_dbm: -70.0 },
            ),
            m(3, Platform::DesktopEthernetApp, 400.0, 20.0, Access::Ethernet),
            m(4, Platform::IosApp, 50.0, 5.0, Access::Wifi { band: Band::G5, rssi_dbm: -55.0 }),
        ]
    }

    #[test]
    fn base_columns_mirror_measurements() {
        let ms = sample();
        let s = CampaignStore::from_measurements(&ms);
        assert_eq!(s.len(), ms.len());
        assert_eq!(s.down(), &[80.0, 90.0, 20.0, 400.0, 50.0]);
        assert_eq!(s.platform()[3], Platform::DesktopEthernetApp);
        assert!(s.kernel_memory_gb()[1].is_nan(), "web reports no memory");
        assert_eq!(s.kernel_memory_gb()[0], 3.0);
    }

    #[test]
    fn derived_columns_computed_exactly_once() {
        let s = CampaignStore::from_measurements(&sample());
        assert_eq!(s.derived_builds(), 0, "nothing derived up front");
        let first = s.time_bin().to_vec();
        assert_eq!(s.derived_builds(), 1);
        let second = s.time_bin().to_vec();
        assert_eq!(s.derived_builds(), 1, "memoized: no recomputation");
        assert_eq!(first, second);
        // Every family builds once, no matter how often it is read.
        s.materialize_derived();
        s.materialize_derived();
        let after = s.derived_builds();
        assert_eq!(after, 8, "eight derived families, each built once");
        s.platform_sel(Platform::AndroidApp);
        s.month();
        s.wifi_band();
        assert_eq!(s.derived_builds(), after);
    }

    #[test]
    fn derived_codes_match_row_logic() {
        let ms = sample();
        let s = CampaignStore::from_measurements(&ms);
        assert_eq!(
            s.access_class(),
            &[ACCESS_WIFI, ACCESS_UNKNOWN, ACCESS_WIFI, ACCESS_ETHERNET, ACCESS_WIFI]
        );
        assert_eq!(s.wifi_band(), &[BAND_5, BAND_NONE, BAND_2_4, BAND_NONE, BAND_5]);
        assert_eq!(s.rssi_dbm()[0], -40.0);
        assert!(s.rssi_dbm()[3].is_nan());
        for (i, m) in ms.iter().enumerate() {
            let expect = m.memory_class().map(memory_code).unwrap_or(MEMORY_NONE);
            assert_eq!(s.memory_class()[i], expect);
            assert_eq!(s.time_bin()[i] as usize, m.time_bin());
            assert_eq!(s.month()[i] as usize, m.month());
        }
    }

    #[test]
    fn platform_selections_partition_the_store() {
        let s = CampaignStore::from_measurements(&sample());
        assert_eq!(s.platform_sel(Platform::AndroidApp).indices(), &[0, 2]);
        assert_eq!(s.platform_sel(Platform::Web).indices(), &[1]);
        assert_eq!(s.platform_sel(Platform::NdtWeb).len(), 0);
        let native = s.native_sel();
        assert_eq!(native.indices(), &[0, 2, 3, 4], "web portal is not native");
    }

    #[test]
    fn to_frame_matches_canonical_schema() {
        let ms = sample();
        let s = CampaignStore::from_measurements(&ms);
        let df = s.to_frame();
        assert_eq!(df.n_rows(), ms.len());
        assert_eq!(df.n_cols(), 16);
        assert_eq!(df.f64("down_mbps").unwrap()[0], 80.0);
        assert_eq!(df.str("access").unwrap()[3], "ethernet");
        assert_eq!(df.str("band").unwrap()[0], "5 GHz");
        assert_eq!(df.i64("truth_tier").unwrap()[0], -1);
    }

    #[test]
    fn to_frame_aliases_f64_columns_without_copying() {
        let s = CampaignStore::from_measurements(&sample());
        let df = s.to_frame();
        for (frame_col, store_col) in [
            ("down_mbps", s.down()),
            ("up_mbps", s.up()),
            ("rtt_ms", s.rtt()),
            ("loaded_rtt_ms", s.loaded_rtt()),
            ("memory_gb", s.kernel_memory_gb()),
        ] {
            let exported = df.f64(frame_col).unwrap();
            assert!(
                std::ptr::eq(exported.as_ptr(), store_col.as_ptr()),
                "{frame_col} must alias the store's storage, not copy it"
            );
        }
    }

    #[test]
    fn assignments_are_write_once_and_derive_groups() {
        let s = CampaignStore::from_measurements(&sample());
        let catalog = PlanCatalog::new("Test-ISP", &[(50.0, 5.0), (100.0, 5.0), (500.0, 20.0)]);
        assert!(!s.has_assignments());
        let top = catalog.len();
        let tiers = vec![Some(1), None, Some(1), Some(top), None];
        let caps = vec![0, -1, 0, (catalog.upload_caps().len() - 1) as i32, -1];
        s.set_assignments(tiers.clone(), caps.clone(), &catalog).unwrap();
        assert_eq!(
            s.set_assignments(tiers, caps, &catalog),
            Err(StoreError::AssignmentsAlreadySet),
            "second scatter must surface a typed error, not panic"
        );
        let asg = s.assigned();
        assert_eq!(asg.group_idx[0], 0);
        assert_eq!(asg.group_idx[1], -1);
        assert!(asg.plan_down[1].is_nan());
        assert!(asg.normalized_down[0] <= 1.0);
        assert_eq!(asg.group_sels[0].indices(), &[0, 2]);
        assert_eq!(s.cap_counts(&Selection::all(s.len()))[0], 2);
        let android = s.platform_sel(Platform::AndroidApp);
        assert_eq!(s.cap_counts(android)[0], 2);
    }

    #[test]
    fn short_assignment_columns_error_without_mutating() {
        let s = CampaignStore::from_measurements(&sample());
        let catalog = PlanCatalog::new("Test-ISP", &[(50.0, 5.0), (100.0, 5.0)]);
        assert_eq!(
            s.set_assignments(vec![None; 2], vec![-1; s.len()], &catalog),
            Err(StoreError::LengthMismatch { column: "tier", expected: 5, got: 2 })
        );
        assert_eq!(
            s.set_assignments(vec![None; s.len()], vec![-1; 3], &catalog),
            Err(StoreError::LengthMismatch { column: "upload_cap_idx", expected: 5, got: 3 })
        );
        assert!(!s.has_assignments(), "failed scatters must leave the store unassigned");
        s.set_assignments(vec![None; s.len()], vec![-1; s.len()], &catalog).unwrap();
        assert!(s.has_assignments());
    }
}
