//! The measurement record schema.
//!
//! One [`Measurement`] is one completed speed test together with the
//! contextual metadata the paper's recommendations say must travel with it:
//! platform, access medium, WiFi band/RSSI, kernel memory, and timestamp.
//! The `truth_tier` field carries the generator's ground-truth plan
//! assignment; evaluation code uses it for scoring and the BST pipeline
//! never reads it.

use serde::Serialize;
use st_netsim::{Band, MemoryClass};

/// Which vendor's methodology produced the measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Vendor {
    /// Ookla Speedtest (multi-connection).
    Ookla,
    /// M-Lab Speed Test / NDT (single connection).
    MLab,
    /// FCC Measuring Broadband America whitebox (wired panel hardware).
    Mba,
}

impl Vendor {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Vendor::Ookla => "Ookla",
            Vendor::MLab => "M-Lab",
            Vendor::Mba => "MBA",
        }
    }
}

/// The client platform, following the paper's Table 3 row structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Platform {
    /// Ookla native Android app (always on WiFi; reports band/RSSI/memory).
    AndroidApp,
    /// Ookla native iOS app (always on WiFi).
    IosApp,
    /// Ookla native desktop app on WiFi.
    DesktopWifiApp,
    /// Ookla native desktop app on Ethernet.
    DesktopEthernetApp,
    /// Ookla web portal (no device metadata).
    Web,
    /// M-Lab NDT via the web portal (no device metadata).
    NdtWeb,
    /// FCC MBA whitebox: wired panel hardware testing around the clock.
    MbaUnit,
}

impl Platform {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::AndroidApp => "Android-App",
            Platform::IosApp => "iOS-App",
            Platform::DesktopWifiApp => "Desktop WiFi-App",
            Platform::DesktopEthernetApp => "Desktop Ethernet-App",
            Platform::Web => "Net-Web",
            Platform::NdtWeb => "NDT-Web",
            Platform::MbaUnit => "MBA-Unit",
        }
    }

    /// The vendor that operates this platform.
    pub fn vendor(&self) -> Vendor {
        match self {
            Platform::NdtWeb => Vendor::MLab,
            Platform::MbaUnit => Vendor::Mba,
            _ => Vendor::Ookla,
        }
    }

    /// Whether this platform reports device metadata (native apps do;
    /// web-based tests do not — paper §3.1; MBA units are wired hardware).
    pub fn has_device_metadata(&self) -> bool {
        !matches!(self, Platform::Web | Platform::NdtWeb | Platform::MbaUnit)
    }

    /// All crowdsourced platforms in the paper's table order (excludes the
    /// MBA panel, which is not crowdsourced).
    pub fn all() -> [Platform; 6] {
        [
            Platform::AndroidApp,
            Platform::IosApp,
            Platform::DesktopWifiApp,
            Platform::DesktopEthernetApp,
            Platform::Web,
            Platform::NdtWeb,
        ]
    }
}

/// The access medium recorded for the test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Access {
    /// WiFi, with the band and RSSI metadata Android tests report.
    Wifi {
        /// Spectrum band.
        band: Band,
        /// Signal strength at the device, dBm.
        rssi_dbm: f64,
    },
    /// Wired Ethernet.
    Ethernet,
    /// Unknown (web-based tests carry no access metadata).
    Unknown,
}

impl Access {
    /// Whether the medium is known to be WiFi.
    pub fn is_wifi(&self) -> bool {
        matches!(self, Access::Wifi { .. })
    }
}

/// One completed speed test with its context.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Measurement {
    /// Unique test id.
    pub id: u64,
    /// Stable per-user id (native apps only in the real data; the
    /// generator assigns one to every test).
    pub user_id: u64,
    /// Platform that ran the test.
    pub platform: Platform,
    /// City index (0 = City-A .. 3 = City-D).
    pub city: u8,
    /// Day of year, 0-based (0..365).
    pub day: u16,
    /// Local hour of day, 0..24.
    pub hour: u8,
    /// Measured download speed, Mbps.
    pub down_mbps: f64,
    /// Measured upload speed, Mbps.
    pub up_mbps: f64,
    /// Measured idle round-trip time, milliseconds.
    pub rtt_ms: f64,
    /// RTT while the download was loading the path, milliseconds
    /// ("latency under load"; equals `rtt_ms` when the path never queued).
    pub loaded_rtt_ms: f64,
    /// Access medium (and WiFi metadata where the platform reports it).
    pub access: Access,
    /// Kernel memory available during the test, GB (Android only).
    pub kernel_memory_gb: Option<f64>,
    /// Ground-truth subscription tier (generator-known; used only by
    /// evaluation code, never by BST itself).
    pub truth_tier: Option<usize>,
}

impl Measurement {
    /// The vendor behind this measurement.
    pub fn vendor(&self) -> Vendor {
        self.platform.vendor()
    }

    /// Memory bin, if the platform reported memory.
    pub fn memory_class(&self) -> Option<MemoryClass> {
        self.kernel_memory_gb.map(MemoryClass::from_gb)
    }

    /// Six-hour time-of-day bin index 0..4 (00-06, 06-12, 12-18, 18-00),
    /// as used by the paper's Figs. 11 and 12.
    pub fn time_bin(&self) -> usize {
        (self.hour as usize % 24) / 6
    }

    /// Label for the six-hour bin. Out-of-range bins clamp to the last
    /// label (debug builds assert) so one malformed record degrades to a
    /// mislabeled bin instead of aborting a whole campaign.
    pub fn time_bin_label(bin: usize) -> &'static str {
        debug_assert!(bin < 4, "time bin must be 0..4, got {bin}");
        match bin {
            0 => "00-06",
            1 => "06-12",
            2 => "12-18",
            _ => "18-24",
        }
    }

    /// Month index 0..12 derived from the day of year (for the per-month
    /// consistency analysis of §5.2).
    pub fn month(&self) -> usize {
        month_of_day(self.day)
    }
}

/// Month index 0..12 for a 0-based day of year (non-leap year). Shared
/// between [`Measurement::month`] and the store's derived month column.
pub fn month_of_day(day: u16) -> usize {
    // Cumulative days at the start of each month.
    const STARTS: [u16; 13] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365];
    let d = day.min(364);
    STARTS.iter().rposition(|&s| s <= d).expect("day 0 matches month 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Measurement {
        Measurement {
            id: 1,
            user_id: 10,
            platform: Platform::AndroidApp,
            city: 0,
            day: 0,
            hour: 13,
            down_mbps: 95.0,
            up_mbps: 5.1,
            rtt_ms: 14.0,
            loaded_rtt_ms: 21.0,
            access: Access::Wifi { band: Band::G5, rssi_dbm: -55.0 },
            kernel_memory_gb: Some(7.2),
            truth_tier: Some(2),
        }
    }

    #[test]
    fn vendor_mapping() {
        assert_eq!(Platform::NdtWeb.vendor(), Vendor::MLab);
        assert_eq!(Platform::Web.vendor(), Vendor::Ookla);
        assert_eq!(base().vendor(), Vendor::Ookla);
        assert_eq!(Vendor::MLab.label(), "M-Lab");
    }

    #[test]
    fn device_metadata_availability() {
        assert!(Platform::AndroidApp.has_device_metadata());
        assert!(Platform::DesktopEthernetApp.has_device_metadata());
        assert!(!Platform::Web.has_device_metadata());
        assert!(!Platform::NdtWeb.has_device_metadata());
    }

    #[test]
    fn time_bins() {
        let mut m = base();
        let cases = [(0u8, 0usize), (5, 0), (6, 1), (11, 1), (12, 2), (17, 2), (18, 3), (23, 3)];
        for (hour, bin) in cases {
            m.hour = hour;
            assert_eq!(m.time_bin(), bin, "hour {hour}");
        }
        assert_eq!(Measurement::time_bin_label(0), "00-06");
        assert_eq!(Measurement::time_bin_label(3), "18-24");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time bin must be 0..4")]
    fn bad_time_bin_label_asserts_in_debug() {
        let _ = Measurement::time_bin_label(4);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn bad_time_bin_label_clamps_in_release() {
        assert_eq!(Measurement::time_bin_label(4), "18-24");
        assert_eq!(Measurement::time_bin_label(usize::MAX), "18-24");
    }

    #[test]
    fn month_from_day_of_year() {
        let mut m = base();
        m.day = 0;
        assert_eq!(m.month(), 0); // Jan 1
        m.day = 30;
        assert_eq!(m.month(), 0); // Jan 31
        m.day = 31;
        assert_eq!(m.month(), 1); // Feb 1
        m.day = 364;
        assert_eq!(m.month(), 11); // Dec 31
        m.day = 400; // clamped
        assert_eq!(m.month(), 11);
    }

    #[test]
    fn memory_class_binning() {
        let mut m = base();
        assert_eq!(m.memory_class(), Some(MemoryClass::Over6G));
        m.kernel_memory_gb = None;
        assert_eq!(m.memory_class(), None);
    }

    #[test]
    fn access_helpers() {
        assert!(base().access.is_wifi());
        assert!(!Access::Ethernet.is_wifi());
        assert!(!Access::Unknown.is_wifi());
    }

    #[test]
    fn measurement_serializes_to_json() {
        let json = serde_json::to_string(&base()).unwrap();
        assert!(json.contains("\"down_mbps\":95.0"));
        assert!(json.contains("AndroidApp"));
        assert!(json.contains("rssi_dbm"));
    }

    #[test]
    fn platform_labels_match_paper() {
        assert_eq!(Platform::all().len(), 6);
        assert_eq!(Platform::AndroidApp.label(), "Android-App");
        assert_eq!(Platform::NdtWeb.label(), "NDT-Web");
    }
}
