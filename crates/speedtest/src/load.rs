//! Chaos-hardened concurrent load harness (DESIGN.md §16).
//!
//! [`run_load`] drives hundreds of wire sessions against a pool of
//! [`crate::wire::ShapedServer`]s — optionally fault-injecting ones —
//! with per-session capped-exponential retry ([`BackoffSchedule`]), a
//! per-endpoint [`CircuitBreaker`], and AIM-style quality scoring of
//! every surviving session. It never panics and never fails wholesale:
//! the worst possible world (every session faulted, every endpoint
//! tripped) still folds into a [`LoadSummary`] with an explicit
//! degraded marker and NaN-free zeros.
//!
//! ## The plan → execute → fold shape
//!
//! The harness is deterministic where it matters and honest where it
//! can't be. Under the two-class metric contract (DESIGN.md §13) every
//! counter must be byte-identical across runs and `--parallelism`
//! levels, but sockets deliver bytes in wall-clock order — so the
//! harness splits:
//!
//! 1. **Plan** (sequential, in session-id order): every session's fate
//!    is derived from the [`FaultProfile`] — a pure function of
//!    `(seed, session id)` — and fed through the per-endpoint breakers.
//!    Every deterministic metric (`load.sessions_*`,
//!    `load.breaker_trips`, planned retries and backoff sleeps) is
//!    recorded here, before a single socket opens.
//! 2. **Execute** (concurrent, any order): admitted sessions run real
//!    wire measurements into per-session sub-registries that carry only
//!    wall-clock data (span durations, measured value histograms).
//! 3. **Fold** (sequential, in session-id order): sub-registries merge
//!    into the root, surviving sessions are scored, and actual-vs-plan
//!    divergence — possible only if the environment misbehaves beyond
//!    the injected faults — is surfaced as the wall-clock-class
//!    `unexpected_outcomes` count rather than silently absorbed.

use crate::fault::{FaultProfile, SessionFault};
use crate::retry::{Admission, BackoffSchedule, BreakerState, CircuitBreaker};
use crate::scoring::{score, QualityScores, SessionQuality};
use crate::wire::{
    measure_download_with, measure_latency_with, measure_upload_with, LatencyResult, SessionTag,
    WireOptions, WireResult,
};
use parking_lot::Mutex;
use serde::Serialize;
use st_obs::Registry;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Bucket bounds for the planned-backoff histogram, seconds.
const BACKOFF_BOUNDS: &[f64] = &[0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0];
/// Bucket bounds for measured 0–100 quality scores.
const SCORE_BOUNDS: &[f64] = &[10.0, 25.0, 50.0, 75.0, 90.0, 99.0];
/// Bucket bounds for measured throughput, Mbps.
const MBPS_BOUNDS: &[f64] = &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0];
/// Bucket bounds for measured latency, milliseconds.
const LATENCY_MS_BOUNDS: &[f64] = &[0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0];

/// Configuration of one [`run_load`] campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadOptions {
    /// Sessions to drive. Session ids are `0..sessions`, assigned to
    /// pool endpoints round-robin.
    pub sessions: usize,
    /// Connections per session transfer.
    pub n_conns: usize,
    /// Transfer window per direction.
    pub duration: Duration,
    /// Ramp-up discard inside the transfer window.
    pub ramp_discard: Duration,
    /// Echo exchanges for the latency phase.
    pub n_pings: usize,
    /// Attempt budget per session (1 = no retries). At most 255 so the
    /// attempt index fits the wire preamble.
    pub attempts: u32,
    /// Retry backoff schedule (seeded jitter; see [`BackoffSchedule`]).
    pub backoff: BackoffSchedule,
    /// Breaker trips after this many consecutive session failures.
    pub breaker_k: u32,
    /// Breaker cooldown, counted in skipped admissions.
    pub breaker_cooldown: u32,
    /// Concurrent session workers. Changes wall-clock behavior only —
    /// never the deterministic metric class.
    pub parallelism: usize,
    /// Also measure upload (off by default: halves the wall cost).
    pub with_upload: bool,
    /// The fault schedule shared with the server pool. `None` plans
    /// every session healthy.
    pub faults: Option<FaultProfile>,
    /// Wire-level robustness knobs for each attempt's measurements.
    pub wire: WireOptions,
}

impl LoadOptions {
    /// Defaults sized for fast loopback campaigns: short transfers, one
    /// connection, three attempts with millisecond backoff, breakers at
    /// `k = 3` with a cooldown of 2 skips.
    pub fn new(sessions: usize) -> LoadOptions {
        let duration = Duration::from_millis(150);
        LoadOptions {
            sessions,
            n_conns: 1,
            duration,
            ramp_discard: Duration::from_millis(50),
            n_pings: 3,
            attempts: 3,
            backoff: BackoffSchedule::new(
                Duration::from_millis(5),
                Duration::from_millis(40),
                0xb0ff_5eed,
            ),
            breaker_k: 3,
            breaker_cooldown: 2,
            parallelism: 8,
            with_upload: false,
            faults: None,
            wire: WireOptions::for_duration(duration),
        }
    }
}

/// A session's plan-derived fate class. The deterministic summary
/// counters are sums over these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PlannedOutcome {
    /// Healthy: completes on the first attempt.
    Ok,
    /// Hard-faulted with a fault window shorter than the attempt
    /// budget: completes after retries.
    Retried,
    /// Soft-faulted: completes on the first attempt with partial or
    /// slowed data.
    Degraded,
    /// Hard-faulted beyond the attempt budget: every attempt fails.
    Abandoned,
    /// Never admitted: the endpoint's breaker was open.
    Skipped,
}

impl PlannedOutcome {
    /// Whether a session of this class completes with a result.
    fn completes(self) -> bool {
        matches!(self, PlannedOutcome::Ok | PlannedOutcome::Retried | PlannedOutcome::Degraded)
    }
}

/// One session's fully-resolved plan.
struct PlannedSession {
    id: u64,
    endpoint: usize,
    fault: SessionFault,
    outcome: PlannedOutcome,
}

/// One executed (or skipped) session, as reported in
/// [`LoadSummary::reports`]. Every float is finite: absent measurements
/// report `0.0`, never NaN.
#[derive(Debug, Clone, Serialize)]
pub struct SessionReport {
    /// Session id (the fault-schedule key).
    pub session: u64,
    /// Pool index the session was routed to.
    pub endpoint: usize,
    /// Plan-derived fate class.
    pub planned: PlannedOutcome,
    /// Injected fault label, if the plan faulted this session.
    pub fault: Option<&'static str>,
    /// Whether the session actually produced a measurement.
    pub completed: bool,
    /// Attempts consumed (0 for skipped sessions).
    pub attempts_used: u32,
    /// Measured download, Mbps (`0.0` when not completed).
    pub down_mbps: f64,
    /// Measured upload, Mbps (`0.0` when not measured).
    pub up_mbps: f64,
    /// Measured mean RTT, milliseconds (`0.0` when not completed).
    pub latency_ms: f64,
    /// Measured jitter, milliseconds (`0.0` when not completed).
    pub jitter_ms: f64,
    /// Application quality scores of a completed session.
    pub scores: Option<QualityScores>,
    /// The last attempt's error, when the session did not complete.
    pub error: Option<String>,
}

/// The fold of one [`run_load`] campaign. The counter fields up to
/// [`LoadSummary::breaker_skips`] are **plan-derived and deterministic**
/// — byte-identical across runs and parallelism for a fixed
/// configuration; the rest is wall-clock class (DESIGN.md §13/§16).
#[derive(Debug, Clone, Serialize)]
pub struct LoadSummary {
    /// Sessions planned (`opts.sessions`).
    pub sessions_total: u64,
    /// Planned healthy completions.
    pub sessions_ok: u64,
    /// Planned retried completions (hard fault, recovered).
    pub sessions_retried: u64,
    /// Planned degraded completions (soft fault).
    pub sessions_degraded: u64,
    /// Planned abandonments (hard fault, budget exhausted).
    pub sessions_abandoned: u64,
    /// Sessions never admitted (breaker open).
    pub sessions_skipped: u64,
    /// Sessions handed to the execution phase (`total - skipped`).
    pub sessions_executed: u64,
    /// Planned retry attempts across admitted sessions.
    pub retries_planned: u64,
    /// Planned fault count per [`crate::fault::FaultKind::label`].
    pub faults_planned: BTreeMap<String, u64>,
    /// Breaker trips summed over endpoints.
    pub breaker_trips: u64,
    /// Breaker probes summed over endpoints.
    pub breaker_probes: u64,
    /// Breaker skips summed over endpoints.
    pub breaker_skips: u64,
    /// Sessions that actually completed (wall-clock class).
    pub sessions_completed: u64,
    /// Sessions whose actual fate diverged from the plan — nonzero only
    /// when the environment misbehaves beyond the injected faults.
    pub unexpected_outcomes: u64,
    /// True when **no** session completed: the explicit marker that the
    /// means below are empty-set zeros, not measurements.
    pub degraded: bool,
    /// Mean download over completed sessions, Mbps (0.0 if none).
    pub mean_down_mbps: f64,
    /// Mean RTT over completed sessions, milliseconds (0.0 if none).
    pub mean_latency_ms: f64,
    /// Mean jitter over completed sessions, milliseconds (0.0 if none).
    pub mean_jitter_ms: f64,
    /// Mean streaming score over completed sessions (0.0 if none).
    pub mean_streaming: f64,
    /// Mean gaming score over completed sessions (0.0 if none).
    pub mean_gaming: f64,
    /// Mean conferencing score over completed sessions (0.0 if none).
    pub mean_conferencing: f64,
    /// Campaign wall time, seconds.
    pub elapsed_s: f64,
    /// Per-session reports, in session-id order.
    pub reports: Vec<SessionReport>,
}

/// Classify a session's fate from its fault plan and the attempt
/// budget — the deterministic heart of the summary.
fn classify(fault: &SessionFault, attempts: u32) -> PlannedOutcome {
    match fault.kind {
        None => PlannedOutcome::Ok,
        Some(k) if k.is_hard() => {
            if fault.faulted_attempts < attempts {
                PlannedOutcome::Retried
            } else {
                PlannedOutcome::Abandoned
            }
        }
        Some(_) => PlannedOutcome::Degraded,
    }
}

/// Retries an admitted session of this plan will consume.
fn planned_retries(fault: &SessionFault, attempts: u32) -> u32 {
    match fault.kind {
        Some(k) if k.is_hard() => fault.faulted_attempts.min(attempts.saturating_sub(1)),
        _ => 0,
    }
}

/// A breaker state's event-name suffix.
fn state_event(state: BreakerState) -> &'static str {
    match state {
        BreakerState::Closed => "load.breaker_close",
        BreakerState::Open => "load.breaker_open",
        BreakerState::HalfOpen => "load.breaker_half_open",
    }
}

/// Breaker totals summed over endpoints at the end of planning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BreakerTotals {
    trips: u64,
    probes: u64,
    skips: u64,
}

/// Plan every session and record the deterministic metric class.
fn plan_campaign(
    pool_len: usize,
    opts: &LoadOptions,
    reg: &Registry,
) -> (Vec<PlannedSession>, BreakerTotals) {
    let mut breakers: Vec<CircuitBreaker> =
        (0..pool_len).map(|_| CircuitBreaker::new(opts.breaker_k, opts.breaker_cooldown)).collect();
    let mut plans = Vec::with_capacity(opts.sessions);
    let mut class_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut retries_planned = 0u64;

    for s in 0..opts.sessions as u64 {
        let endpoint = (s as usize) % pool_len;
        let fault = match &opts.faults {
            Some(p) => p.plan_for(s),
            None => SessionFault::healthy(),
        };
        let unblocked = classify(&fault, opts.attempts);
        let breaker = &mut breakers[endpoint];
        let before = breaker.state();
        let outcome = match breaker.admit() {
            Admission::Skip => PlannedOutcome::Skipped,
            Admission::Admit | Admission::AdmitProbe => {
                breaker.record(unblocked.completes());
                unblocked
            }
        };
        let after = breaker.state();
        if after != before {
            let endpoint_str = endpoint.to_string();
            let session_str = s.to_string();
            reg.event(
                state_event(after),
                "lifecycle",
                &[("endpoint", &endpoint_str), ("session", &session_str)],
            );
        }
        if let Some(kind) = fault.kind {
            reg.inc("load.faults_planned", &[("kind", kind.label())]);
        }
        if outcome != PlannedOutcome::Skipped {
            let retries = planned_retries(&fault, opts.attempts);
            retries_planned += u64::from(retries);
            for r in 0..retries {
                reg.observe(
                    "load.backoff_s",
                    &[],
                    opts.backoff.delay(s, r).as_secs_f64(),
                    BACKOFF_BOUNDS,
                );
            }
        }
        *class_counts
            .entry(match outcome {
                PlannedOutcome::Ok => "ok",
                PlannedOutcome::Retried => "retried",
                PlannedOutcome::Degraded => "degraded",
                PlannedOutcome::Abandoned => "abandoned",
                PlannedOutcome::Skipped => "skipped",
            })
            .or_insert(0) += 1;
        plans.push(PlannedSession { id: s, endpoint, fault, outcome });
    }

    reg.add("load.sessions_total", &[], opts.sessions as u64);
    for (class, n) in &class_counts {
        reg.add(&format!("load.sessions_{class}"), &[], *n);
    }
    let skipped = class_counts.get("skipped").copied().unwrap_or(0);
    reg.add("load.sessions_executed", &[], opts.sessions as u64 - skipped);
    reg.add("load.retries_planned", &[], retries_planned);
    let mut totals = BreakerTotals::default();
    for (i, b) in breakers.iter().enumerate() {
        let endpoint_str = i.to_string();
        let labels = &[("endpoint", endpoint_str.as_str())];
        reg.add("load.breaker_trips", labels, b.trips());
        reg.add("load.breaker_probes", labels, b.probes());
        reg.add("load.breaker_skips", labels, b.skips());
        totals.trips += b.trips();
        totals.probes += b.probes();
        totals.skips += b.skips();
    }
    (plans, totals)
}

/// One attempt's measurements, in phase order.
fn try_attempt(
    addr: SocketAddr,
    opts: &LoadOptions,
    wire: &WireOptions,
) -> std::io::Result<(LatencyResult, WireResult, Option<WireResult>)> {
    let latency = measure_latency_with(addr, opts.n_pings, wire)?;
    let download =
        measure_download_with(addr, opts.n_conns, opts.duration, opts.ramp_discard, wire)?;
    let upload = if opts.with_upload {
        Some(measure_upload_with(addr, opts.n_conns, opts.duration, opts.ramp_discard, wire)?)
    } else {
        None
    };
    Ok((latency, download, upload))
}

/// Execute one admitted session: attempt/backoff loop over the wire
/// measurements, then score the survivor. `reg` is this session's
/// private sub-registry and receives only wall-clock data — the wire
/// calls run with their metrics disabled because byte counts and
/// retry timing are not parallelism-invariant.
fn execute_session(
    pool: &[SocketAddr],
    plan: &PlannedSession,
    opts: &LoadOptions,
    reg: &Registry,
) -> SessionReport {
    let addr = pool[plan.endpoint];
    let mut report = SessionReport {
        session: plan.id,
        endpoint: plan.endpoint,
        planned: plan.outcome,
        fault: plan.fault.kind.map(|k| k.label()),
        completed: false,
        attempts_used: 0,
        down_mbps: 0.0,
        up_mbps: 0.0,
        latency_ms: 0.0,
        jitter_ms: 0.0,
        scores: None,
        error: None,
    };
    if plan.outcome == PlannedOutcome::Skipped {
        report.error = Some("breaker open: session skipped".to_string());
        return report;
    }

    let span = reg.span("load/session");
    for attempt in 0..opts.attempts {
        report.attempts_used = attempt + 1;
        if attempt > 0 {
            thread::sleep(opts.backoff.delay(plan.id, attempt - 1));
        }
        let wire = WireOptions {
            session: Some(SessionTag { id: plan.id, attempt: attempt.min(255) as u8 }),
            ..opts.wire
        };
        match try_attempt(addr, opts, &wire) {
            Ok((latency, download, upload)) => {
                let attempted = download.connections + download.connections_failed;
                let loss = if attempted > 0 {
                    Some(download.connections_failed as f64 / attempted as f64)
                } else {
                    None
                };
                report.completed = true;
                report.down_mbps = download.mean_all_mbps;
                report.up_mbps = upload.map_or(0.0, |u| u.mean_all_mbps);
                report.latency_ms = latency.mean_s * 1e3;
                report.jitter_ms = latency.jitter_s * 1e3;
                report.scores = Some(score(&SessionQuality {
                    down_mbps: report.down_mbps,
                    up_mbps: report.up_mbps,
                    latency_ms: report.latency_ms,
                    jitter_ms: report.jitter_ms,
                    loss,
                }));
                report.error = None;
                break;
            }
            Err(e) => report.error = Some(e.to_string()),
        }
    }
    span.stop();
    report
}

/// Drive `opts.sessions` concurrent wire sessions against `pool` and
/// fold the outcome into a [`LoadSummary`]. See the module docs for the
/// plan → execute → fold contract; the summary's counter fields and the
/// `load.*` counters/histograms in `reg` are deterministic, everything
/// measured is wall-clock class.
///
/// Partial failure is a result, not an error: the function returns a
/// summary even when every session dies.
pub fn run_load(pool: &[SocketAddr], opts: &LoadOptions, reg: &Registry) -> LoadSummary {
    assert!(!pool.is_empty(), "need at least one endpoint");
    assert!(opts.sessions >= 1, "need at least one session");
    assert!((1..=255).contains(&opts.attempts), "attempt budget must be in 1..=255");
    assert!(opts.n_conns >= 1, "need at least one connection per session");

    let start = Instant::now();
    let pool_str = pool.len().to_string();
    let sessions_str = opts.sessions.to_string();
    reg.event("load.start", "lifecycle", &[("sessions", &sessions_str), ("pool", &pool_str)]);

    // Phase 1: plan (sequential; records the deterministic class).
    let (plans, breaker_totals) = plan_campaign(pool.len(), opts, reg);

    // Phase 2: execute concurrently. Results land in per-session slots
    // so the fold below runs in session-id order regardless of which
    // worker finished when.
    let slots: Vec<Mutex<Option<(SessionReport, Registry)>>> =
        plans.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = opts.parallelism.clamp(1, plans.len());
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(plan) = plans.get(i) else { break };
                let sub = reg.sub();
                let report = execute_session(pool, plan, opts, &sub);
                *slots[i].lock() = Some((report, sub));
            });
        }
    });

    // Phase 3: fold in session-id order.
    let mut summary = LoadSummary {
        sessions_total: plans.len() as u64,
        sessions_ok: 0,
        sessions_retried: 0,
        sessions_degraded: 0,
        sessions_abandoned: 0,
        sessions_skipped: 0,
        sessions_executed: 0,
        retries_planned: 0,
        faults_planned: BTreeMap::new(),
        breaker_trips: breaker_totals.trips,
        breaker_probes: breaker_totals.probes,
        breaker_skips: breaker_totals.skips,
        sessions_completed: 0,
        unexpected_outcomes: 0,
        degraded: false,
        mean_down_mbps: 0.0,
        mean_latency_ms: 0.0,
        mean_jitter_ms: 0.0,
        mean_streaming: 0.0,
        mean_gaming: 0.0,
        mean_conferencing: 0.0,
        elapsed_s: 0.0,
        reports: Vec::with_capacity(plans.len()),
    };
    for plan in &plans {
        match plan.outcome {
            PlannedOutcome::Ok => summary.sessions_ok += 1,
            PlannedOutcome::Retried => summary.sessions_retried += 1,
            PlannedOutcome::Degraded => summary.sessions_degraded += 1,
            PlannedOutcome::Abandoned => summary.sessions_abandoned += 1,
            PlannedOutcome::Skipped => summary.sessions_skipped += 1,
        }
        if let Some(kind) = plan.fault.kind {
            *summary.faults_planned.entry(kind.label().to_string()).or_insert(0) += 1;
        }
        summary.retries_planned += if plan.outcome == PlannedOutcome::Skipped {
            0
        } else {
            u64::from(planned_retries(&plan.fault, opts.attempts))
        };
    }
    summary.sessions_executed = summary.sessions_total - summary.sessions_skipped;

    for (i, slot) in slots.iter().enumerate() {
        let (report, sub) = slot.lock().take().unwrap_or_else(|| {
            // A worker can only leave a slot empty by panicking, which
            // thread::scope would have propagated — but degrade anyway.
            (execute_skipped_stub(&plans[i]), Registry::disabled())
        });
        reg.merge(&sub);
        if report.completed != report.planned.completes() {
            summary.unexpected_outcomes += 1;
        }
        if report.completed {
            summary.sessions_completed += 1;
            summary.mean_down_mbps += report.down_mbps;
            summary.mean_latency_ms += report.latency_ms;
            summary.mean_jitter_ms += report.jitter_ms;
            if let Some(s) = &report.scores {
                summary.mean_streaming += s.streaming;
                summary.mean_gaming += s.gaming;
                summary.mean_conferencing += s.conferencing;
            }
            reg.observe_wall("load.session_down_mbps", &[], report.down_mbps, MBPS_BOUNDS);
            reg.observe_wall("load.session_latency_ms", &[], report.latency_ms, LATENCY_MS_BOUNDS);
            if let Some(s) = &report.scores {
                reg.observe_wall("load.score_streaming", &[], s.streaming, SCORE_BOUNDS);
                reg.observe_wall("load.score_gaming", &[], s.gaming, SCORE_BOUNDS);
                reg.observe_wall("load.score_conferencing", &[], s.conferencing, SCORE_BOUNDS);
            }
        }
        summary.reports.push(report);
    }

    // NaN-free by construction: an empty survivor set reports explicit
    // zeros behind the `degraded` marker instead of 0/0.
    if summary.sessions_completed == 0 {
        summary.degraded = true;
    } else {
        let n = summary.sessions_completed as f64;
        summary.mean_down_mbps /= n;
        summary.mean_latency_ms /= n;
        summary.mean_jitter_ms /= n;
        summary.mean_streaming /= n;
        summary.mean_gaming /= n;
        summary.mean_conferencing /= n;
    }
    summary.elapsed_s = start.elapsed().as_secs_f64();

    let completed_str = summary.sessions_completed.to_string();
    let skipped_str = summary.sessions_skipped.to_string();
    reg.event("load.end", "lifecycle", &[("completed", &completed_str), ("skipped", &skipped_str)]);
    summary
}

/// Fallback report for a slot no worker filled (see the fold phase).
fn execute_skipped_stub(plan: &PlannedSession) -> SessionReport {
    SessionReport {
        session: plan.id,
        endpoint: plan.endpoint,
        planned: plan.outcome,
        fault: plan.fault.kind.map(|k| k.label()),
        completed: false,
        attempts_used: 0,
        down_mbps: 0.0,
        up_mbps: 0.0,
        latency_ms: 0.0,
        jitter_ms: 0.0,
        scores: None,
        error: Some("session was never executed".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ShapedServer;
    use std::net::TcpListener;

    #[test]
    fn healthy_pool_completes_every_session() {
        let server = ShapedServer::start(100.0, 20.0).unwrap();
        let mut opts = LoadOptions::new(4);
        opts.duration = Duration::from_millis(120);
        opts.ramp_discard = Duration::from_millis(40);
        opts.parallelism = 4;
        let reg = Registry::new();
        let summary = run_load(&[server.addr()], &opts, &reg);
        assert_eq!(summary.sessions_ok, 4, "{summary:?}");
        assert_eq!(summary.sessions_completed, 4);
        assert_eq!(summary.unexpected_outcomes, 0);
        assert!(!summary.degraded);
        assert!(summary.mean_down_mbps > 0.0);
        assert!(summary.reports.iter().all(|r| r.scores.is_some()));
        let snap = reg.snapshot();
        assert_eq!(snap.deterministic.counters.get("load.sessions_total"), Some(&4));
        assert_eq!(snap.deterministic.counters.get("load.sessions_ok"), Some(&4));
        assert!(snap.wall_clock.values.contains_key("load.score_streaming"));
    }

    #[test]
    fn dead_pool_degrades_without_nans() {
        // A port that refuses every connect: zero survivors. The summary
        // must carry the explicit degraded marker and finite zeros —
        // never 0/0 — and classify the divergence from the (healthy)
        // plan instead of dropping it.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let mut opts = LoadOptions::new(6);
        opts.attempts = 2;
        opts.wire.connect_attempts = 1;
        opts.wire.connect_backoff = Duration::from_millis(1);
        opts.parallelism = 3;
        let summary = run_load(&[addr], &opts, &Registry::new());
        assert_eq!(summary.sessions_completed, 0);
        assert!(summary.degraded, "zero survivors must raise the degraded marker");
        assert_eq!(summary.mean_down_mbps, 0.0);
        assert_eq!(summary.mean_streaming, 0.0);
        assert_eq!(summary.unexpected_outcomes, 6, "every planned-ok session diverged");
        for v in [
            summary.mean_down_mbps,
            summary.mean_latency_ms,
            summary.mean_jitter_ms,
            summary.mean_streaming,
            summary.mean_gaming,
            summary.mean_conferencing,
            summary.elapsed_s,
        ] {
            assert!(v.is_finite(), "non-finite summary field: {summary:?}");
        }
        assert!(summary
            .reports
            .iter()
            .all(|r| { r.down_mbps.is_finite() && r.latency_ms.is_finite() && r.error.is_some() }));
        // And the whole summary round-trips through JSON (serde_json
        // would render a NaN as null — which `is_finite` above rules
        // out for every float the summary carries).
        serde_json::to_string(&summary).unwrap();
    }

    #[test]
    fn planning_is_deterministic_and_parallelism_free() {
        // The deterministic metric class must not depend on execution:
        // plan the same campaign twice straight into registries and
        // compare the exact-compare surface.
        let opts = LoadOptions {
            faults: Some(FaultProfile::new(99, 0.5)),
            sessions: 100,
            ..LoadOptions::new(100)
        };
        let reg_a = Registry::new();
        let reg_b = Registry::new();
        let _ = plan_campaign(4, &opts, &reg_a);
        let _ = plan_campaign(4, &opts, &reg_b);
        assert_eq!(reg_a.snapshot().deterministic_json(), reg_b.snapshot().deterministic_json());
    }

    #[test]
    fn abandoned_sessions_trip_breakers_in_the_plan() {
        // A profile whose hard faults always outlast the attempt budget
        // (attempts = 1) yields abandonments; with k = 1 every
        // abandonment trips its endpoint's breaker and later sessions
        // on that endpoint are skipped.
        let mut opts = LoadOptions::new(40);
        opts.attempts = 1;
        opts.breaker_k = 1;
        opts.breaker_cooldown = 5;
        opts.faults = Some(FaultProfile::new(13, 0.9));
        let reg = Registry::new();
        let (plans, totals) = plan_campaign(2, &opts, &reg);
        let abandoned = plans.iter().filter(|p| p.outcome == PlannedOutcome::Abandoned).count();
        let skipped = plans.iter().filter(|p| p.outcome == PlannedOutcome::Skipped).count();
        assert!(abandoned > 0, "rate-0.9 hard faults must abandon some sessions");
        assert!(skipped > 0, "k=1 breakers must skip sessions after abandonments");
        assert!(totals.trips > 0 && totals.skips as usize == skipped, "{totals:?}");
        let snap = reg.snapshot();
        let trips: u64 = snap
            .deterministic
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("load.breaker_trips"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(trips, totals.trips, "{:?}", snap.deterministic.counters);
    }
}
