//! Segmented campaign store: sealed immutable segments + a mutable tail.
//!
//! A monolithic [`CampaignStore`] is write-once: columns are built in
//! one shot from a complete campaign, which is exactly right for the
//! batch repro but a dead end for continuous crowdsourced arrival
//! (ROADMAP item 1). A [`SegmentedStore`] keeps the write-once
//! invariants — per *segment*: each sealed segment is a full
//! [`CampaignStore`] with its own memoized derived columns and
//! write-once `AssignedColumns` — while the **mutable tail** buffers
//! appended measurement chunks, sanitizes them incrementally (one
//! seen-id set threaded across chunks so cross-chunk duplicates
//! classify exactly as a batch pass would), and seals deterministically.
//!
//! ## Seal determinism
//!
//! A segment seals when the tail reaches `seal_rows` accepted rows, and
//! the remainder seals on [`SegmentedStore::freeze`]. Sealing consumes
//! *exactly* `seal_rows` rows at a time, so segment boundaries are a
//! pure function of the accepted-row sequence and `seal_rows` — never
//! of chunk sizes, wall-clock, or thread scheduling. Since sanitize is
//! a pure function of record order and appends never reorder a store's
//! own stream, the accepted-row sequence itself is chunking-invariant:
//! any chunking of the same stream yields byte-identical segment
//! contents.
//!
//! ## Reading across segments
//!
//! Column getters return [`FragCol`]s chaining the per-segment slices;
//! selections return [`FragSelection`]s composing the per-segment
//! memoized [`Selection`]s. A batch-built store
//! ([`SegmentedStore::from_store`]) has exactly one segment, so every
//! view is a single borrowed fragment and the PR 6 zero-copy paths
//! (identity `gather_view`, `to_frame` Arc-aliasing) are preserved
//! bit-for-bit.

use std::borrow::Cow;
use std::collections::HashSet;

use st_dataframe::{DataFrame, FragCol, FragSelection};

use crate::plans::PlanCatalog;
use crate::record::{Access, Measurement, Platform};
use crate::sanitize::{sanitize_with_seen, SanitizeReport};
use crate::store::{CampaignStore, StoreError};

/// Default accepted-row count at which the tail seals into a segment.
pub const DEFAULT_SEAL_ROWS: usize = 8192;

/// Per-chunk ingest outcome counts returned by
/// [`SegmentedStore::append_chunk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Records offered in this chunk.
    pub rows_in: usize,
    /// Records accepted unchanged.
    pub clean: u64,
    /// Records accepted after normalization.
    pub repaired: u64,
    /// Records dropped by the quarantine.
    pub quarantined: u64,
    /// Segments sealed while absorbing this chunk.
    pub segments_sealed: usize,
}

/// A measurement campaign as sealed immutable segments plus a mutable
/// tail; the one storage engine behind both the batch repro and the
/// incremental ingest front-end.
pub struct SegmentedStore {
    segments: Vec<CampaignStore>,
    tail: Vec<Measurement>,
    seen: HashSet<u64>,
    report: SanitizeReport,
    seal_rows: usize,
    chunks: u64,
    frozen: bool,
}

impl SegmentedStore {
    /// An empty store accepting appended chunks; the tail seals into a
    /// segment every `seal_rows` accepted rows (and on
    /// [`SegmentedStore::freeze`]).
    pub fn builder(seal_rows: usize) -> Self {
        assert!(seal_rows > 0, "seal threshold must be positive");
        SegmentedStore {
            segments: Vec::new(),
            tail: Vec::new(),
            seen: HashSet::new(),
            report: SanitizeReport::default(),
            seal_rows,
            chunks: 0,
            frozen: false,
        }
    }

    /// Wrap one already-sanitized campaign as a single sealed segment —
    /// the batch path. No sanitize runs here (the batch pipeline
    /// sanitizes upstream), and with exactly one segment every column
    /// view borrows one contiguous slice, preserving the monolithic
    /// store's zero-copy behavior.
    pub fn from_measurements(ms: &[Measurement]) -> Self {
        Self::from_store(CampaignStore::from_measurements(ms))
    }

    /// Wrap an existing monolithic store as a single sealed segment.
    pub fn from_store(store: CampaignStore) -> Self {
        SegmentedStore {
            segments: vec![store],
            tail: Vec::new(),
            seen: HashSet::new(),
            report: SanitizeReport::default(),
            seal_rows: DEFAULT_SEAL_ROWS,
            chunks: 0,
            frozen: true,
        }
    }

    // ---- ingest ---------------------------------------------------------

    /// Append one arrival chunk: sanitize it incrementally (duplicate
    /// detection spans chunks), buffer the accepted rows in the tail,
    /// and seal full segments of exactly `seal_rows` rows as the tail
    /// fills. Errors with [`StoreError::Frozen`] after
    /// [`SegmentedStore::freeze`].
    pub fn append_chunk(&mut self, records: Vec<Measurement>) -> Result<ChunkStats, StoreError> {
        if self.frozen {
            return Err(StoreError::Frozen);
        }
        let rows_in = records.len();
        let (kept, report) = sanitize_with_seen(records, &mut self.seen);
        let stats = ChunkStats {
            rows_in,
            clean: report.clean,
            repaired: report.repaired,
            quarantined: report.quarantined,
            segments_sealed: 0,
        };
        self.report.merge(&report);
        self.tail.extend(kept);
        let mut sealed = 0;
        while self.tail.len() >= self.seal_rows {
            let rest = self.tail.split_off(self.seal_rows);
            let full: Vec<Measurement> = std::mem::replace(&mut self.tail, rest);
            self.segments.push(CampaignStore::from_measurements(&full));
            sealed += 1;
        }
        self.chunks += 1;
        Ok(ChunkStats { segments_sealed: sealed, ..stats })
    }

    /// Seal the remaining tail (an empty segment if the store never saw
    /// an accepted row, so downstream code always has ≥ 1 segment) and
    /// reject any further appends.
    ///
    /// Freezing is a one-shot lifecycle transition: a second call
    /// returns [`StoreError::Frozen`] instead of silently succeeding,
    /// so a serve/ingest coordinator that freezes the same partition
    /// twice learns about its bookkeeping bug instead of masking it.
    pub fn freeze(&mut self) -> Result<(), StoreError> {
        if self.frozen {
            return Err(StoreError::Frozen);
        }
        if !self.tail.is_empty() || self.segments.is_empty() {
            let tail = std::mem::take(&mut self.tail);
            self.segments.push(CampaignStore::from_measurements(&tail));
        }
        self.frozen = true;
        Ok(())
    }

    /// Rows accepted by the sanitizer so far: sealed plus still-buffered
    /// tail rows. This is the quantity epoch boundaries are a pure
    /// function of (DESIGN.md §18) — chunk sizes and interleave never
    /// feed into it.
    pub fn accepted_rows(&self) -> usize {
        self.len() + self.tail.len()
    }

    /// Reconstruct the accepted rows of every **sealed** segment, in
    /// seal order. Tail rows are excluded (they are not readable until
    /// sealed), so the result is a pure function of the accepted-row
    /// sequence and the seal threshold — the input a warm analysis
    /// rebuild (st-serve epoch publishing) consumes.
    pub fn sealed_measurements(&self) -> Vec<Measurement> {
        let mut rows = Vec::with_capacity(self.len());
        for seg in &self.segments {
            for i in 0..seg.len() {
                let mem = seg.kernel_memory_gb()[i];
                rows.push(Measurement {
                    id: seg.id()[i],
                    user_id: seg.user_id()[i],
                    platform: seg.platform()[i],
                    city: seg.city()[i],
                    day: seg.day()[i],
                    hour: seg.hour()[i],
                    down_mbps: seg.down()[i],
                    up_mbps: seg.up()[i],
                    rtt_ms: seg.rtt()[i],
                    loaded_rtt_ms: seg.loaded_rtt()[i],
                    access: seg.access()[i],
                    kernel_memory_gb: (!mem.is_nan()).then_some(mem),
                    truth_tier: seg.truth_tier()[i],
                });
            }
        }
        rows
    }

    /// Cumulative sanitize report over every appended chunk (empty for
    /// batch-wrapped stores, which sanitize upstream).
    pub fn report(&self) -> &SanitizeReport {
        &self.report
    }

    /// Chunks appended so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Sealed segments so far (the tail is not a segment until sealed).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Accepted rows still buffered in the mutable tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Whether [`SegmentedStore::freeze`] has run.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The sealed segments, in seal order.
    pub fn segments(&self) -> &[CampaignStore] {
        &self.segments
    }

    // ---- segmented column views -----------------------------------------

    /// Total rows across sealed segments (tail rows are not readable
    /// until sealed).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// True when no sealed segment has any rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn seg_lens(&self) -> Vec<usize> {
        self.segments.iter().map(|s| s.len()).collect()
    }

    fn frag_col<'a, T>(&'a self, f: impl Fn(&'a CampaignStore) -> &'a [T]) -> FragCol<'a, T> {
        FragCol::new(self.segments.iter().map(f).collect())
    }

    /// Test ids.
    pub fn id(&self) -> FragCol<'_, u64> {
        self.frag_col(|s| s.id())
    }

    /// Per-user ids.
    pub fn user_id(&self) -> FragCol<'_, u64> {
        self.frag_col(|s| s.user_id())
    }

    /// Platform per row.
    pub fn platform(&self) -> FragCol<'_, Platform> {
        self.frag_col(|s| s.platform())
    }

    /// City index per row.
    pub fn city(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.city())
    }

    /// Day of year per row.
    pub fn day(&self) -> FragCol<'_, u16> {
        self.frag_col(|s| s.day())
    }

    /// Local hour per row.
    pub fn hour(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.hour())
    }

    /// Download speeds, Mbps.
    pub fn down(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.down())
    }

    /// Upload speeds, Mbps.
    pub fn up(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.up())
    }

    /// Idle round-trip times, ms.
    pub fn rtt(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.rtt())
    }

    /// Loaded round-trip times, ms.
    pub fn loaded_rtt(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.loaded_rtt())
    }

    /// Access medium per row.
    pub fn access(&self) -> FragCol<'_, Access> {
        self.frag_col(|s| s.access())
    }

    /// Kernel memory, GB (NaN when the platform reported none).
    pub fn kernel_memory_gb(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.kernel_memory_gb())
    }

    /// Ground-truth tier per row (generator-known; evaluation only).
    pub fn truth_tier(&self) -> FragCol<'_, Option<usize>> {
        self.frag_col(|s| s.truth_tier())
    }

    // ---- derived columns (per-segment memoized) --------------------------

    /// Six-hour time-of-day bin per row (0..4).
    pub fn time_bin(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.time_bin())
    }

    /// Month index per row (0..12).
    pub fn month(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.month())
    }

    /// Access class per row (see [`crate::store::ACCESS_WIFI`] etc.).
    pub fn access_class(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.access_class())
    }

    /// WiFi band per row (see [`crate::store::BAND_2_4`] etc.).
    pub fn wifi_band(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.wifi_band())
    }

    /// WiFi RSSI per row, dBm (NaN for non-WiFi rows).
    pub fn rssi_dbm(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.rssi_dbm())
    }

    /// Memory-class code per row (see [`crate::store::memory_code`]).
    pub fn memory_class(&self) -> FragCol<'_, u8> {
        self.frag_col(|s| s.memory_class())
    }

    /// Selection of this platform's rows, composed from each segment's
    /// memoized per-platform selection (borrowed, not copied).
    pub fn platform_sel(&self, platform: Platform) -> FragSelection<'_> {
        let parts = self.segments.iter().map(|s| Cow::Borrowed(s.platform_sel(platform))).collect();
        FragSelection::from_parts(parts, &self.seg_lens())
    }

    /// Selection of native-app rows (platforms with device metadata),
    /// composed from each segment's memoized selection.
    pub fn native_sel(&self) -> FragSelection<'_> {
        let parts = self.segments.iter().map(|s| Cow::Borrowed(s.native_sel())).collect();
        FragSelection::from_parts(parts, &self.seg_lens())
    }

    /// Evaluate `pred` over global row indices, one owned selection part
    /// per segment (the segmented `Selection::from_pred`).
    pub fn from_pred(&self, pred: impl FnMut(usize) -> bool) -> FragSelection<'_> {
        FragSelection::from_pred(&self.seg_lens(), pred)
    }

    /// Force every segment's lazy derived columns.
    pub fn materialize_derived(&self) {
        for s in &self.segments {
            s.materialize_derived();
        }
    }

    /// Derived column families built so far, summed over segments.
    pub fn derived_builds(&self) -> usize {
        self.segments.iter().map(|s| s.derived_builds()).sum()
    }

    /// Record the store's shape into a metrics registry under `labels`,
    /// segment by segment in seal order (so `store.rows` totals match
    /// the monolithic store for any chunking).
    pub fn observe(&self, reg: &st_obs::Registry, labels: &[(&str, &str)]) {
        for s in &self.segments {
            s.observe(reg, labels);
        }
    }

    // ---- assigned columns -----------------------------------------------

    /// Scatter BST fit outputs onto the store: the global `tier` /
    /// `upload_cap_idx` columns are split at segment boundaries and
    /// scattered per segment (scattering is row-local, so this equals
    /// the monolithic scatter for any segmentation). Errors with
    /// [`StoreError::NotFrozen`] before [`SegmentedStore::freeze`],
    /// [`StoreError::LengthMismatch`] when a column does not cover every
    /// row, and [`StoreError::AssignmentsAlreadySet`] on re-scatter; the
    /// length checks run before any segment mutates.
    pub fn set_assignments(
        &self,
        tier: Vec<Option<usize>>,
        upload_cap_idx: Vec<i32>,
        catalog: &PlanCatalog,
    ) -> Result<(), StoreError> {
        if !self.frozen {
            return Err(StoreError::NotFrozen);
        }
        if tier.len() != self.len() {
            return Err(StoreError::LengthMismatch {
                column: "tier",
                expected: self.len(),
                got: tier.len(),
            });
        }
        if upload_cap_idx.len() != self.len() {
            return Err(StoreError::LengthMismatch {
                column: "upload_cap_idx",
                expected: self.len(),
                got: upload_cap_idx.len(),
            });
        }
        let mut off = 0;
        for s in &self.segments {
            let end = off + s.len();
            s.set_assignments(tier[off..end].to_vec(), upload_cap_idx[off..end].to_vec(), catalog)?;
            off = end;
        }
        Ok(())
    }

    /// Whether assignments have been scattered onto every segment.
    pub fn has_assignments(&self) -> bool {
        !self.segments.is_empty() && self.segments.iter().all(|s| s.has_assignments())
    }

    /// Assigned subscription tier per row.
    pub fn assigned_tier(&self) -> FragCol<'_, Option<usize>> {
        self.frag_col(|s| s.assigned().tier.as_slice())
    }

    /// Matched upload-cap index per row (-1 when unmatched).
    pub fn upload_cap_idx(&self) -> FragCol<'_, i32> {
        self.frag_col(|s| s.assigned().upload_cap_idx.as_slice())
    }

    /// Tier-group index per row (-1 when unassigned).
    pub fn group_idx(&self) -> FragCol<'_, i32> {
        self.frag_col(|s| s.assigned().group_idx.as_slice())
    }

    /// Advertised plan download speed per row (NaN when unassigned).
    pub fn plan_down_col(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.assigned().plan_down.as_slice())
    }

    /// Plan-normalized download per row (NaN when unassigned).
    pub fn normalized_down(&self) -> FragCol<'_, f64> {
        self.frag_col(|s| s.assigned().normalized_down.as_slice())
    }

    /// Number of tier groups the assignments were scattered against.
    pub fn n_groups(&self) -> usize {
        self.segments.first().map(|s| s.assigned().group_sels.len()).unwrap_or(0)
    }

    /// Number of upload caps the assignments were scattered against.
    pub fn n_caps(&self) -> usize {
        self.segments.first().map(|s| s.assigned().cap_sels.len()).unwrap_or(0)
    }

    /// Selection of rows in tier group `gi`, composed from each
    /// segment's memoized group selection.
    pub fn group_sel(&self, gi: usize) -> FragSelection<'_> {
        let parts =
            self.segments.iter().map(|s| Cow::Borrowed(&s.assigned().group_sels[gi])).collect();
        FragSelection::from_parts(parts, &self.seg_lens())
    }

    /// Selection of rows matched to upload cap `ci`, composed from each
    /// segment's memoized cap selection.
    pub fn cap_sel(&self, ci: usize) -> FragSelection<'_> {
        let parts =
            self.segments.iter().map(|s| Cow::Borrowed(&s.assigned().cap_sels[ci])).collect();
        FragSelection::from_parts(parts, &self.seg_lens())
    }

    /// Count rows per upload cap within `sel`: each segment counts its
    /// own part, and the per-cap counts sum across segments.
    pub fn cap_counts(&self, sel: &FragSelection<'_>) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_caps()];
        for (k, s) in self.segments.iter().enumerate() {
            for (c, n) in counts.iter_mut().zip(s.cap_counts(sel.part(k))) {
                *c += n;
            }
        }
        counts
    }

    // ---- interop --------------------------------------------------------

    /// Convert the campaign to the canonical 16-column data frame. A
    /// single-segment (batch) store delegates to
    /// [`CampaignStore::to_frame`], keeping its `f64` columns aliased
    /// Arc-bump zero-copy; a multi-segment store concatenates segment
    /// frames row-wise in seal order, byte-identical column by column.
    pub fn to_frame(&self) -> DataFrame {
        if self.segments.len() == 1 {
            return self.segments[0].to_frame();
        }
        let mut frames = self.segments.iter().map(|s| s.to_frame());
        let first = frames.next().expect("frozen store has at least one segment");
        frames.fold(first, |acc, f| {
            acc.vstack(&f).expect("segment frames share the canonical schema")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Platform;
    use crate::sanitize::sanitize;
    use st_dataframe::Selection;
    use st_netsim::Band;

    fn m(id: u64) -> Measurement {
        Measurement {
            id,
            user_id: id % 5,
            platform: match id % 3 {
                0 => Platform::AndroidApp,
                1 => Platform::Web,
                _ => Platform::IosApp,
            },
            city: 0,
            day: (id % 365) as u16,
            hour: (id % 24) as u8,
            down_mbps: 10.0 + id as f64,
            up_mbps: 1.0 + (id % 7) as f64,
            rtt_ms: 12.0,
            loaded_rtt_ms: 15.0,
            access: Access::Wifi { band: Band::G5, rssi_dbm: -50.0 },
            kernel_memory_gb: Some(4.0),
            truth_tier: None,
        }
    }

    fn dirty_stream(n: u64) -> Vec<Measurement> {
        let mut out = Vec::new();
        for id in 0..n {
            let mut r = m(id);
            match id % 11 {
                3 => r.down_mbps = f64::NAN,
                5 => r.day = 400,
                7 => r.rtt_ms = 0.0,
                _ => {}
            }
            out.push(r);
            if id % 13 == 0 && id > 0 {
                out.push(m(id - 1)); // duplicate of the previous id
            }
        }
        out
    }

    fn ingest(stream: &[Measurement], chunk: usize, seal: usize) -> SegmentedStore {
        let mut store = SegmentedStore::builder(seal);
        for c in stream.chunks(chunk) {
            store.append_chunk(c.to_vec()).unwrap();
        }
        store.freeze().unwrap();
        store
    }

    #[test]
    fn seal_boundaries_are_a_pure_function_of_accepted_rows() {
        let stream = dirty_stream(100);
        let a = ingest(&stream, 7, 16);
        let b = ingest(&stream, 33, 16);
        assert_eq!(a.num_segments(), b.num_segments(), "boundaries independent of chunk size");
        for (x, y) in a.segments().iter().zip(b.segments()) {
            assert_eq!(x.id(), y.id());
        }
        // Every non-final segment holds exactly seal_rows rows.
        for s in &a.segments()[..a.num_segments() - 1] {
            assert_eq!(s.len(), 16);
        }
    }

    #[test]
    fn chunked_ingest_matches_monolithic_store() {
        let stream = dirty_stream(80);
        let (kept, batch_report) = sanitize(stream.clone());
        let mono = CampaignStore::from_measurements(&kept);
        for (chunk, seal) in [(1, 7), (9, 7), (80, 7), (5, 1000)] {
            let seg = ingest(&stream, chunk, seal);
            assert_eq!(seg.len(), mono.len());
            assert_eq!(seg.report(), &batch_report, "chunk {chunk} seal {seal}");
            assert_eq!(seg.id().to_vec(), mono.id());
            assert_eq!(seg.down().to_vec(), mono.down());
            assert_eq!(seg.time_bin().to_vec(), mono.time_bin());
            assert_eq!(seg.month().to_vec(), mono.month());
            assert_eq!(seg.memory_class().to_vec(), mono.memory_class());
            let sel: Vec<usize> = seg.platform_sel(Platform::AndroidApp).iter().collect();
            let mono_sel: Vec<usize> = mono.platform_sel(Platform::AndroidApp).iter().collect();
            assert_eq!(sel, mono_sel);
        }
    }

    #[test]
    fn append_after_freeze_is_rejected() {
        let mut store = SegmentedStore::builder(8);
        store.append_chunk(vec![m(1)]).unwrap();
        store.freeze().unwrap();
        assert_eq!(store.append_chunk(vec![m(2)]), Err(StoreError::Frozen));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn freeze_always_leaves_a_segment_and_is_one_shot() {
        let mut empty = SegmentedStore::builder(8);
        empty.freeze().unwrap();
        assert_eq!(empty.num_segments(), 1);
        assert!(empty.is_empty());
        // A second freeze is a lifecycle bug, not a no-op.
        assert_eq!(empty.freeze(), Err(StoreError::Frozen));
        assert_eq!(empty.num_segments(), 1);
        // Batch-wrapped stores are born frozen, so freezing them again
        // reports the same typed error.
        let batch = SegmentedStore::from_measurements(&[]);
        assert!(batch.is_frozen());
    }

    #[test]
    fn accepted_rows_and_sealed_measurements_track_the_accepted_stream() {
        let stream = dirty_stream(60);
        let (kept, _) = sanitize(stream.clone());

        let mut store = SegmentedStore::builder(16);
        for c in stream.chunks(7) {
            store.append_chunk(c.to_vec()).unwrap();
        }
        assert_eq!(store.accepted_rows(), kept.len());
        assert_eq!(store.accepted_rows(), store.len() + store.tail_len());
        // Sealed reconstruction is exactly the accepted prefix that has
        // been sealed so far.
        assert_eq!(store.sealed_measurements(), kept[..store.len()].to_vec());

        store.freeze().unwrap();
        assert_eq!(store.accepted_rows(), kept.len());
        assert_eq!(store.sealed_measurements(), kept, "frozen store reconstructs every row");
    }

    #[test]
    fn chunk_stats_count_outcomes_and_seals() {
        let mut store = SegmentedStore::builder(4);
        let mut records: Vec<Measurement> = (0..6).map(m).collect();
        records[2].down_mbps = f64::NAN;
        let stats = store.append_chunk(records).unwrap();
        assert_eq!(stats.rows_in, 6);
        assert_eq!(stats.clean, 5);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.segments_sealed, 1, "5 accepted rows seal one segment of 4");
        assert_eq!(store.tail_len(), 1);
        assert_eq!(store.chunks(), 1);
    }

    #[test]
    fn assignments_require_freeze_and_split_per_segment() {
        let stream: Vec<Measurement> = (0..20).map(m).collect();
        let catalog = PlanCatalog::new("Test-ISP", &[(50.0, 5.0), (100.0, 10.0)]);
        let mut store = SegmentedStore::builder(6);
        store.append_chunk(stream.clone()).unwrap();
        let tiers: Vec<Option<usize>> =
            (0..20).map(|i| if i % 2 == 0 { Some(1) } else { None }).collect();
        let caps: Vec<i32> = (0..20).map(|i| if i % 2 == 0 { 0 } else { -1 }).collect();
        assert_eq!(
            store.set_assignments(tiers.clone(), caps.clone(), &catalog),
            Err(StoreError::NotFrozen)
        );
        store.freeze().unwrap();
        assert_eq!(store.num_segments(), 4);
        store.set_assignments(tiers.clone(), caps.clone(), &catalog).unwrap();
        assert!(store.has_assignments());
        assert_eq!(
            store.set_assignments(tiers.clone(), caps.clone(), &catalog),
            Err(StoreError::AssignmentsAlreadySet)
        );
        // Per-segment scatter equals the monolithic scatter.
        let mono = CampaignStore::from_measurements(&stream);
        mono.set_assignments(tiers, caps, &catalog).unwrap();
        assert_eq!(store.group_idx().to_vec(), mono.assigned().group_idx);
        let bits: Vec<u64> = store.normalized_down().iter().map(|v| v.to_bits()).collect();
        let mono_bits: Vec<u64> =
            mono.assigned().normalized_down.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, mono_bits, "normalized_down bit-identical incl. NaN rows");
        let all = store.from_pred(|_| true);
        assert_eq!(store.cap_counts(&all), mono.cap_counts(&Selection::all(mono.len())));
        let g0: Vec<usize> = store.group_sel(0).iter().collect();
        let mono_g0: Vec<usize> = mono.assigned().group_sels[0].iter().collect();
        assert_eq!(g0, mono_g0);
    }

    #[test]
    fn multi_segment_to_frame_matches_monolithic() {
        let stream: Vec<Measurement> = (0..25).map(m).collect();
        let seg = ingest(&stream, 4, 7);
        assert!(seg.num_segments() > 1);
        let mono = CampaignStore::from_measurements(&stream).to_frame();
        let framed = seg.to_frame();
        assert_eq!(framed.n_rows(), mono.n_rows());
        assert_eq!(framed.names(), mono.names());
        let a = st_dataframe::csv::to_csv(&framed).unwrap();
        let b = st_dataframe::csv::to_csv(&mono).unwrap();
        assert_eq!(a, b, "multi-segment frame must concatenate byte-identically");
    }

    #[test]
    fn single_segment_to_frame_stays_zero_copy() {
        let stream: Vec<Measurement> = (0..10).map(m).collect();
        let seg = SegmentedStore::from_measurements(&stream);
        let df = seg.to_frame();
        let store_col = seg.segments()[0].down();
        let exported = df.f64("down_mbps").unwrap();
        assert!(
            std::ptr::eq(exported.as_ptr(), store_col.as_ptr()),
            "batch path must keep the Arc-aliasing zero-copy export"
        );
    }
}
