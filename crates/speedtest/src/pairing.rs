//! NDT download/upload association.
//!
//! M-Lab's NDT reports download and upload as *separate* tests, with no
//! link between the two directions of one user session. The paper (§3.2,
//! following Sundaresan et al.) pairs them: for every download test, find
//! upload tests from the same client and server IP that started within a
//! 120-second window, and associate the earliest one. Each upload test is
//! consumed by at most one download test.

/// One direction of an NDT test as it appears in the raw M-Lab data.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtEvent {
    /// Client IP (opaque key; the simulator uses synthetic ids).
    pub client_ip: u64,
    /// Server IP.
    pub server_ip: u64,
    /// Test start time, seconds since epoch of the dataset.
    pub start_s: f64,
    /// Measured rate, Mbps.
    pub mbps: f64,
}

/// A paired NDT measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtPair {
    /// The download event.
    pub download: NdtEvent,
    /// The associated upload event, if one was found in the window.
    pub upload: Option<NdtEvent>,
}

/// Pair download events with upload events per the paper's methodology.
///
/// For each download (in start-time order), uploads from the same
/// `(client_ip, server_ip)` pair whose start time falls in
/// `[download.start_s, download.start_s + window_s]` are candidates; the
/// earliest unconsumed candidate is associated. Returns one [`NdtPair`]
/// per download event.
pub fn pair_ndt_tests(downloads: &[NdtEvent], uploads: &[NdtEvent], window_s: f64) -> Vec<NdtPair> {
    assert!(window_s >= 0.0, "window must be non-negative");

    // Index uploads by endpoint pair, sorted by start time.
    use std::collections::HashMap;
    let mut by_pair: HashMap<(u64, u64), Vec<usize>> = HashMap::new();
    for (i, u) in uploads.iter().enumerate() {
        by_pair.entry((u.client_ip, u.server_ip)).or_default().push(i);
    }
    for idxs in by_pair.values_mut() {
        idxs.sort_by(|&a, &b| {
            uploads[a].start_s.partial_cmp(&uploads[b].start_s).expect("finite times")
        });
    }

    let mut consumed = vec![false; uploads.len()];

    // Process downloads in start-time order so earlier downloads get first
    // pick of shared upload candidates.
    let mut order: Vec<usize> = (0..downloads.len()).collect();
    order.sort_by(|&a, &b| {
        downloads[a].start_s.partial_cmp(&downloads[b].start_s).expect("finite times")
    });

    let mut pairs: Vec<Option<NdtPair>> = vec![None; downloads.len()];
    for &di in &order {
        let d = &downloads[di];
        let candidates = by_pair.get(&(d.client_ip, d.server_ip));
        let upload = candidates.and_then(|idxs| {
            idxs.iter()
                .find(|&&ui| {
                    !consumed[ui]
                        && uploads[ui].start_s >= d.start_s
                        && uploads[ui].start_s <= d.start_s + window_s
                })
                .map(|&ui| {
                    consumed[ui] = true;
                    uploads[ui].clone()
                })
        });
        pairs[di] = Some(NdtPair { download: d.clone(), upload });
    }
    pairs.into_iter().map(|p| p.expect("every download processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(client: u64, start: f64, mbps: f64) -> NdtEvent {
        NdtEvent { client_ip: client, server_ip: 1, start_s: start, mbps }
    }

    #[test]
    fn pairs_within_window() {
        let downs = vec![ev(1, 100.0, 200.0)];
        let ups = vec![ev(1, 130.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].upload.as_ref().unwrap().mbps, 10.0);
    }

    #[test]
    fn outside_window_is_unpaired() {
        let downs = vec![ev(1, 100.0, 200.0)];
        let ups = vec![ev(1, 221.0, 10.0)]; // 121 s later
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert!(pairs[0].upload.is_none());
    }

    #[test]
    fn upload_before_download_is_not_used() {
        let downs = vec![ev(1, 100.0, 200.0)];
        let ups = vec![ev(1, 99.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert!(pairs[0].upload.is_none());
    }

    #[test]
    fn earliest_candidate_wins() {
        // "In the event we observe more than one upload speed test ... we
        // associate the earliest" (§3.2).
        let downs = vec![ev(1, 100.0, 200.0)];
        let ups = vec![ev(1, 150.0, 11.0), ev(1, 110.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert_eq!(pairs[0].upload.as_ref().unwrap().mbps, 10.0);
    }

    #[test]
    fn different_client_never_pairs() {
        let downs = vec![ev(1, 100.0, 200.0)];
        let ups = vec![ev(2, 110.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert!(pairs[0].upload.is_none());
    }

    #[test]
    fn different_server_never_pairs() {
        let downs = vec![NdtEvent { client_ip: 1, server_ip: 7, start_s: 100.0, mbps: 50.0 }];
        let ups = vec![NdtEvent { client_ip: 1, server_ip: 8, start_s: 110.0, mbps: 5.0 }];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        assert!(pairs[0].upload.is_none());
    }

    #[test]
    fn each_upload_consumed_once() {
        let downs = vec![ev(1, 100.0, 200.0), ev(1, 105.0, 190.0)];
        let ups = vec![ev(1, 110.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        let paired: Vec<bool> = pairs.iter().map(|p| p.upload.is_some()).collect();
        assert_eq!(paired.iter().filter(|&&b| b).count(), 1);
        // The earlier download (start 100) gets it.
        assert!(pairs[0].upload.is_some());
        assert!(pairs[1].upload.is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let downs = vec![ev(1, 200.0, 180.0), ev(1, 100.0, 200.0)];
        let ups = vec![ev(1, 205.0, 11.0), ev(1, 101.0, 10.0)];
        let pairs = pair_ndt_tests(&downs, &ups, 120.0);
        // Output order matches input order of downloads.
        assert_eq!(pairs[0].download.start_s, 200.0);
        assert_eq!(pairs[0].upload.as_ref().unwrap().mbps, 11.0);
        assert_eq!(pairs[1].upload.as_ref().unwrap().mbps, 10.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(pair_ndt_tests(&[], &[], 120.0).is_empty());
        let pairs = pair_ndt_tests(&[ev(1, 0.0, 1.0)], &[], 120.0);
        assert!(pairs[0].upload.is_none());
    }

    #[test]
    #[should_panic(expected = "window must be non-negative")]
    fn negative_window_rejected() {
        let _ = pair_ndt_tests(&[], &[], -1.0);
    }
}
