//! Session-level retry scheduling and per-endpoint circuit breaking for
//! the concurrent load harness (DESIGN.md §16).
//!
//! Both pieces are **pure state machines with no clock inside**:
//!
//! * [`BackoffSchedule`] maps `(session id, retry index)` to a delay —
//!   capped exponential doubling with seeded multiplicative jitter, a
//!   pure SplitMix64 function, so a planned schedule can be recorded
//!   into deterministic metrics before a single socket opens.
//! * [`CircuitBreaker`] counts consecutive failures per endpoint and
//!   measures its open cooldown in **skipped admissions**, not seconds.
//!   Driven over a deterministic outcome sequence (the load harness
//!   feeds it planned session outcomes in session-id order) its every
//!   transition is reproducible across runs and parallelism levels.

use crate::fault::{splitmix64, unit_f64};
use std::time::Duration;

/// Stream tag for jitter draws (see `fault::FAULT_TAG` for the idiom).
const JITTER_TAG: u64 = 0x0ff5_e7b4_c0ff_ee01;

/// Capped exponential backoff with seeded multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffSchedule {
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling applied to the doubled (pre-jitter) delay.
    pub cap: Duration,
    /// Jitter fraction: the delay is multiplied by a seeded factor in
    /// `[1, 1 + jitter_frac)`. Zero disables jitter.
    pub jitter_frac: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl BackoffSchedule {
    /// A schedule doubling from `base` to `cap` with 50% jitter.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> BackoffSchedule {
        BackoffSchedule { base, cap, jitter_frac: 0.5, seed }
    }

    /// The pre-jitter delay before retry `retry` (0-based): `base`
    /// doubled `retry` times, capped at `cap`. Monotone non-decreasing
    /// in `retry`.
    pub fn raw_delay(&self, retry: u32) -> Duration {
        let base_s = self.base.as_secs_f64();
        let cap_s = self.cap.as_secs_f64().max(base_s);
        // Saturating doubling in f64: 2^retry overflows no earlier than
        // the cap kicks in for any sane configuration.
        let doubled = base_s * 2f64.powi(retry.min(62) as i32);
        Duration::from_secs_f64(doubled.min(cap_s))
    }

    /// The jittered delay before retry `retry` of session `session_id`:
    /// [`BackoffSchedule::raw_delay`] times a seeded factor in
    /// `[1, 1 + jitter_frac)`. A pure function of
    /// `(seed, session_id, retry)`.
    pub fn delay(&self, session_id: u64, retry: u32) -> Duration {
        let raw = self.raw_delay(retry);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let draw = splitmix64(
            self.seed ^ splitmix64(session_id ^ JITTER_TAG) ^ splitmix64(retry as u64 ^ 0x9e),
        );
        let factor = 1.0 + self.jitter_frac * unit_f64(draw);
        Duration::from_secs_f64(raw.as_secs_f64() * factor)
    }
}

/// What the breaker says about one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: serve normally.
    Admit,
    /// Half-open: serve as the single probe deciding recovery.
    AdmitProbe,
    /// Open (or half-open with the probe already out): fast-fail.
    Skip,
}

/// Breaker position, in the classic three-state scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving; counting consecutive failures.
    Closed,
    /// Tripped; skipping admissions until the cooldown elapses.
    Open,
    /// Cooled down; exactly one probe admission decides what's next.
    HalfOpen,
}

/// A per-endpoint circuit breaker: trips [`BreakerState::Open`] after
/// `k` *consecutive* failures, skips admissions while open, and after
/// `cooldown` skipped admissions goes [`BreakerState::HalfOpen`] to
/// admit exactly one probe — probe success closes the breaker, probe
/// failure re-opens it (counted as a fresh trip).
///
/// The cooldown is counted in skipped admissions rather than wall time
/// so a breaker driven over a fixed outcome sequence transitions
/// identically on every run (DESIGN.md §16).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    k: u32,
    cooldown: u32,
    state: BreakerState,
    consecutive_failures: u32,
    skipped_while_open: u32,
    probe_in_flight: bool,
    trips: u64,
    probes: u64,
    skips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `k` consecutive failures, with a
    /// cooldown of `cooldown` skipped admissions.
    pub fn new(k: u32, cooldown: u32) -> CircuitBreaker {
        assert!(k >= 1, "breaker threshold must be at least 1");
        CircuitBreaker {
            k,
            cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            skipped_while_open: 0,
            probe_in_flight: false,
            trips: 0,
            probes: 0,
            skips: 0,
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Closed→open transitions so far (probe failures included).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Probes admitted so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Admissions skipped so far.
    pub fn skips(&self) -> u64 {
        self.skips
    }

    /// Ask to serve one unit of work. [`Admission::Admit`] and
    /// [`Admission::AdmitProbe`] must be followed by exactly one
    /// [`CircuitBreaker::record`] with the outcome;
    /// [`Admission::Skip`] must not.
    pub fn admit(&mut self) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => {
                self.skipped_while_open += 1;
                if self.skipped_while_open > self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    self.probes += 1;
                    Admission::AdmitProbe
                } else {
                    self.skips += 1;
                    Admission::Skip
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    // One probe at a time: everyone else fast-fails.
                    self.skips += 1;
                    Admission::Skip
                } else {
                    self.probe_in_flight = true;
                    self.probes += 1;
                    Admission::AdmitProbe
                }
            }
        }
    }

    /// Report the outcome of an admitted unit of work.
    pub fn record(&mut self, success: bool) {
        match self.state {
            BreakerState::Closed => {
                if success {
                    self.consecutive_failures = 0;
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.k {
                        self.trip();
                    }
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                if success {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.skipped_while_open = 0;
                } else {
                    self.trip();
                }
            }
            // A late report for work admitted before the trip: the
            // breaker already decided, so it changes nothing.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.consecutive_failures = 0;
        self.skipped_while_open = 0;
        self.probe_in_flight = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_the_cap() {
        let b = BackoffSchedule {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
            jitter_frac: 0.0,
            seed: 0,
        };
        let raw: Vec<u64> = (0..6).map(|r| b.raw_delay(r).as_millis() as u64).collect();
        assert_eq!(raw, vec![50, 100, 200, 400, 400, 400]);
        // Without jitter, delay == raw_delay.
        assert_eq!(b.delay(9, 2), b.raw_delay(2));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let b = BackoffSchedule::new(Duration::from_millis(20), Duration::from_millis(160), 7);
        for session in 0..50u64 {
            for retry in 0..6 {
                let raw = b.raw_delay(retry).as_secs_f64();
                let d = b.delay(session, retry).as_secs_f64();
                assert!(d >= raw && d < raw * (1.0 + b.jitter_frac) + 1e-12, "{session}/{retry}");
                assert_eq!(b.delay(session, retry), b.delay(session, retry));
            }
        }
        // Different sessions jitter differently (with overwhelming odds).
        assert!((0..50).any(|s| b.delay(s, 0) != b.delay(s + 50, 0)));
    }

    #[test]
    fn breaker_trips_after_k_consecutive_failures_only() {
        let mut br = CircuitBreaker::new(3, 2);
        for _ in 0..2 {
            assert_eq!(br.admit(), Admission::Admit);
            br.record(false);
        }
        // A success resets the streak.
        assert_eq!(br.admit(), Admission::Admit);
        br.record(true);
        for _ in 0..2 {
            assert_eq!(br.admit(), Admission::Admit);
            br.record(false);
        }
        assert_eq!(br.state(), BreakerState::Closed, "streak was reset");
        assert_eq!(br.admit(), Admission::Admit);
        br.record(false);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.trips(), 1);
    }

    #[test]
    fn open_breaker_skips_then_half_open_admits_exactly_one_probe() {
        let mut br = CircuitBreaker::new(1, 2);
        assert_eq!(br.admit(), Admission::Admit);
        br.record(false); // trips immediately (k = 1)
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.admit(), Admission::Skip);
        assert_eq!(br.admit(), Admission::Skip);
        // Cooldown of 2 skips served: next admission is the probe.
        assert_eq!(br.admit(), Admission::AdmitProbe);
        // While the probe is out, everyone else still skips.
        assert_eq!(br.admit(), Admission::Skip);
        assert_eq!(br.admit(), Admission::Skip);
        br.record(true);
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.admit(), Admission::Admit);
        assert_eq!((br.trips(), br.probes()), (1, 1));
    }

    #[test]
    fn failed_probe_reopens_and_counts_a_fresh_trip() {
        let mut br = CircuitBreaker::new(1, 0);
        br.admit();
        br.record(false);
        assert_eq!(br.state(), BreakerState::Open);
        // Cooldown 0: the very next admission probes.
        assert_eq!(br.admit(), Admission::AdmitProbe);
        br.record(false);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.trips(), 2);
    }
}
