//! ISP subscription plans and tier groups.
//!
//! The paper's key structural observation (§4.1): within a city, the
//! dominant ISP offers the *same* small set of tiered plans at every street
//! address, and while download caps span 25–1200 Mbps, the set of distinct
//! **upload** caps is much smaller — which is exactly why BST clusters on
//! upload speed first.

use st_netsim::Mbps;
use std::fmt;

/// One subscription plan (a "tier").
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// 1-based tier index within the catalog, ordered by download speed.
    pub tier: usize,
    /// Advertised download cap.
    pub down: Mbps,
    /// Advertised upload cap.
    pub up: Mbps,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tier {}: {:.0}/{:.0} Mbps", self.tier, self.down.0, self.up.0)
    }
}

/// A group of plans sharing one upload cap — the unit BST's first stage
/// recovers (the paper's "Tier 1-3", "Tier 4", ... groupings).
#[derive(Debug, Clone, PartialEq)]
pub struct TierGroup {
    /// The shared upload cap.
    pub up: Mbps,
    /// Tier indices (into the catalog) sharing it, ascending by download.
    pub tiers: Vec<usize>,
}

impl TierGroup {
    /// Label like `"Tier 1-3"` or `"Tier 4"`.
    pub fn label(&self) -> String {
        let lo = self.tiers.first().expect("group is non-empty");
        let hi = self.tiers.last().expect("group is non-empty");
        if lo == hi {
            format!("Tier {lo}")
        } else {
            format!("Tier {lo}-{hi}")
        }
    }
}

/// The full plan catalog of one ISP in one market.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCatalog {
    /// ISP display name (the paper anonymizes these as ISP-A..D).
    pub isp: String,
    plans: Vec<Plan>,
}

impl PlanCatalog {
    /// Build a catalog from `(down, up)` Mbps pairs; tiers are numbered by
    /// ascending download speed.
    ///
    /// # Panics
    /// If `speeds` is empty, contains non-positive rates, or contains a
    /// duplicate download cap (tiers must be distinguishable).
    pub fn new(isp: impl Into<String>, speeds: &[(f64, f64)]) -> Self {
        assert!(!speeds.is_empty(), "catalog must contain at least one plan");
        let mut sorted = speeds.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite plan rates"));
        for w in sorted.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate download cap {}", w[0].0);
        }
        let plans = sorted
            .into_iter()
            .enumerate()
            .map(|(i, (down, up))| {
                assert!(down > 0.0 && up > 0.0, "plan rates must be positive");
                Plan { tier: i + 1, down: Mbps(down), up: Mbps(up) }
            })
            .collect();
        PlanCatalog { isp: isp.into(), plans }
    }

    /// All plans, ascending by download speed.
    pub fn plans(&self) -> &[Plan] {
        &self.plans
    }

    /// Number of plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Always false: catalogs are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Plan by 1-based tier index.
    pub fn plan(&self, tier: usize) -> Option<&Plan> {
        self.plans.get(tier.checked_sub(1)?)
    }

    /// Distinct upload caps, ascending — the candidate cluster centers for
    /// BST stage 1.
    pub fn upload_caps(&self) -> Vec<Mbps> {
        let mut ups: Vec<f64> = self.plans.iter().map(|p| p.up.0).collect();
        ups.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ups.dedup();
        ups.into_iter().map(Mbps).collect()
    }

    /// Tier groups keyed by upload cap, ascending by upload.
    pub fn tier_groups(&self) -> Vec<TierGroup> {
        self.upload_caps()
            .into_iter()
            .map(|up| TierGroup {
                up,
                tiers: self.plans.iter().filter(|p| p.up == up).map(|p| p.tier).collect(),
            })
            .collect()
    }

    /// Plans within the group that shares `up`.
    pub fn plans_with_upload(&self, up: Mbps) -> Vec<&Plan> {
        self.plans.iter().filter(|p| p.up == up).collect()
    }

    /// The tier whose download cap is nearest to `down` (used to map a
    /// recovered cluster mean back onto a plan).
    pub fn nearest_tier_by_download(&self, down: Mbps) -> usize {
        self.plans
            .iter()
            .min_by(|a, b| {
                let da = (a.down.0 - down.0).abs();
                let db = (b.down.0 - down.0).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .map(|p| p.tier)
            .expect("catalog non-empty")
    }

    /// The upload cap nearest to `up` among the distinct caps.
    pub fn nearest_upload_cap(&self, up: Mbps) -> Mbps {
        self.upload_caps()
            .into_iter()
            .min_by(|a, b| (a.0 - up.0).abs().partial_cmp(&(b.0 - up.0).abs()).expect("finite"))
            .expect("catalog non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISP-A catalog quoted verbatim in paper §4.1.
    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    #[test]
    fn tiers_numbered_by_download() {
        let c = isp_a();
        assert_eq!(c.len(), 6);
        assert_eq!(c.plan(1).unwrap().down, Mbps(25.0));
        assert_eq!(c.plan(6).unwrap().down, Mbps(1200.0));
        assert!(c.plan(7).is_none());
        assert!(c.plan(0).is_none());
    }

    #[test]
    fn upload_caps_are_distinct_and_sorted() {
        let caps = isp_a().upload_caps();
        assert_eq!(caps, vec![Mbps(5.0), Mbps(10.0), Mbps(15.0), Mbps(35.0)]);
    }

    #[test]
    fn tier_groups_match_paper_structure() {
        let groups = isp_a().tier_groups();
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].label(), "Tier 1-3");
        assert_eq!(groups[0].tiers, vec![1, 2, 3]);
        assert_eq!(groups[1].label(), "Tier 4");
        assert_eq!(groups[2].label(), "Tier 5");
        assert_eq!(groups[3].label(), "Tier 6");
        assert_eq!(groups[3].up, Mbps(35.0));
    }

    #[test]
    fn plans_with_upload_filters_group() {
        let c = isp_a();
        let five = c.plans_with_upload(Mbps(5.0));
        assert_eq!(five.len(), 3);
        let thirty_five = c.plans_with_upload(Mbps(35.0));
        assert_eq!(thirty_five.len(), 1);
        assert_eq!(thirty_five[0].tier, 6);
    }

    #[test]
    fn nearest_tier_mapping() {
        let c = isp_a();
        assert_eq!(c.nearest_tier_by_download(Mbps(110.9)), 2);
        assert_eq!(c.nearest_tier_by_download(Mbps(892.0)), 5); // 800 closer than 1200
        assert_eq!(c.nearest_tier_by_download(Mbps(1050.0)), 6);
    }

    #[test]
    fn nearest_upload_cap_mapping() {
        let c = isp_a();
        assert_eq!(c.nearest_upload_cap(Mbps(5.87)), Mbps(5.0));
        assert_eq!(c.nearest_upload_cap(Mbps(38.6)), Mbps(35.0));
        assert_eq!(c.nearest_upload_cap(Mbps(12.4)), Mbps(10.0));
    }

    #[test]
    fn display_formats() {
        let c = isp_a();
        assert_eq!(c.plan(1).unwrap().to_string(), "Tier 1: 25/5 Mbps");
    }

    #[test]
    fn out_of_order_input_is_sorted() {
        let c = PlanCatalog::new("X", &[(800.0, 15.0), (25.0, 5.0)]);
        assert_eq!(c.plan(1).unwrap().down, Mbps(25.0));
    }

    #[test]
    #[should_panic(expected = "duplicate download cap")]
    fn duplicate_download_rejected() {
        let _ = PlanCatalog::new("X", &[(100.0, 5.0), (100.0, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn empty_catalog_rejected() {
        let _ = PlanCatalog::new("X", &[]);
    }

    #[test]
    #[should_panic(expected = "plan rates must be positive")]
    fn non_positive_rate_rejected() {
        let _ = PlanCatalog::new("X", &[(100.0, 0.0)]);
    }
}
