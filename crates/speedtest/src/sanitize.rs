//! Record sanitization and quarantine.
//!
//! Real crowdsourced archives are full of aborted, truncated, duplicated,
//! and clock-skewed tests; a pipeline that assumes every record is clean
//! either panics on the first malformed one or silently clamps it into the
//! statistics. This module replaces both failure modes with a structured
//! taxonomy: every record entering an analysis is classified as **clean**
//! (used as-is), **repaired** (a recoverable defect was normalized, e.g. a
//! clock-skewed timestamp wrapped back into range), or **quarantined**
//! (dropped, with a single machine-readable reason). Per-reason counters
//! travel with the output so the repro report can surface exactly what was
//! excluded and why, instead of the run aborting — the paper's
//! contextualization argument applied to the pipeline itself.
//!
//! Classification is a pure function of the record (plus the set of ids
//! already seen, for duplicate detection), so the outcome is deterministic
//! and independent of how the upstream generation was parallelized.

use crate::record::Measurement;
use serde::Serialize;
use std::collections::{BTreeMap, HashSet};

/// Throughput above this is implausible for any access link in the study
/// (the largest catalog plan is ~1.2 Gbps; 100 Gbps is beyond any
/// residential technology the paper considers).
pub const MAX_PLAUSIBLE_MBPS: f64 = 100_000.0;

/// RTT above this (one minute) means the latency phase did not measure a
/// round trip but a timeout.
pub const MAX_PLAUSIBLE_RTT_MS: f64 = 60_000.0;

/// Why a record was quarantined. Exactly one reason is ever assigned —
/// checks run in the order of the variants and the first hit wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum QuarantineReason {
    /// Download or upload throughput is NaN or infinite.
    NonFiniteThroughput,
    /// Download or upload throughput is zero or negative.
    NonPositiveThroughput,
    /// Throughput exceeds [`MAX_PLAUSIBLE_MBPS`].
    ImplausibleThroughput,
    /// Idle or loaded RTT is NaN or infinite.
    NonFiniteLatency,
    /// Idle RTT is zero or negative — the latency phase never completed,
    /// the signature of an aborted/truncated test.
    AbortedTest,
    /// RTT exceeds [`MAX_PLAUSIBLE_RTT_MS`].
    ImplausibleLatency,
    /// A record with this test id was already accepted (duplicate
    /// submission; first submission wins).
    DuplicateId,
}

impl QuarantineReason {
    /// Stable kebab-case label used in counters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::NonFiniteThroughput => "non-finite-throughput",
            QuarantineReason::NonPositiveThroughput => "non-positive-throughput",
            QuarantineReason::ImplausibleThroughput => "implausible-throughput",
            QuarantineReason::NonFiniteLatency => "non-finite-latency",
            QuarantineReason::AbortedTest => "aborted-test",
            QuarantineReason::ImplausibleLatency => "implausible-latency",
            QuarantineReason::DuplicateId => "duplicate-id",
        }
    }
}

/// A recoverable defect that was normalized in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum RepairReason {
    /// Day-of-year beyond the campaign year (clock skew) wrapped with
    /// `day % 365`.
    DayOutOfRange,
    /// Hour of day `>= 24` (clock skew) wrapped with `hour % 24`.
    HourOutOfRange,
}

impl RepairReason {
    /// Stable kebab-case label used in counters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RepairReason::DayOutOfRange => "day-out-of-range",
            RepairReason::HourOutOfRange => "hour-out-of-range",
        }
    }
}

/// The verdict for one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Classification {
    /// Record is valid as-is.
    Clean,
    /// Record was normalized; the listed defects were repaired.
    Repaired(Vec<RepairReason>),
    /// Record must be dropped for this single reason.
    Quarantined(QuarantineReason),
}

/// Classify `m` without mutating it. `is_duplicate` is the caller's
/// verdict on whether this test id was already accepted ([`sanitize`]
/// threads a seen-set through; pass `false` when checking one record in
/// isolation).
///
/// Checks run in a fixed order (throughput, latency, duplicate, then
/// repairable timestamp defects), so every record lands in exactly one
/// bucket and re-running the classification is byte-stable.
pub fn classify(m: &Measurement, is_duplicate: bool) -> Classification {
    if !m.down_mbps.is_finite() || !m.up_mbps.is_finite() {
        return Classification::Quarantined(QuarantineReason::NonFiniteThroughput);
    }
    if m.down_mbps <= 0.0 || m.up_mbps <= 0.0 {
        return Classification::Quarantined(QuarantineReason::NonPositiveThroughput);
    }
    if m.down_mbps > MAX_PLAUSIBLE_MBPS || m.up_mbps > MAX_PLAUSIBLE_MBPS {
        return Classification::Quarantined(QuarantineReason::ImplausibleThroughput);
    }
    if !m.rtt_ms.is_finite() || !m.loaded_rtt_ms.is_finite() {
        return Classification::Quarantined(QuarantineReason::NonFiniteLatency);
    }
    if m.rtt_ms <= 0.0 {
        return Classification::Quarantined(QuarantineReason::AbortedTest);
    }
    if m.rtt_ms > MAX_PLAUSIBLE_RTT_MS || m.loaded_rtt_ms > MAX_PLAUSIBLE_RTT_MS {
        return Classification::Quarantined(QuarantineReason::ImplausibleLatency);
    }
    if is_duplicate {
        return Classification::Quarantined(QuarantineReason::DuplicateId);
    }
    let mut repairs = Vec::new();
    if m.day >= 365 {
        repairs.push(RepairReason::DayOutOfRange);
    }
    if m.hour >= 24 {
        repairs.push(RepairReason::HourOutOfRange);
    }
    if repairs.is_empty() {
        Classification::Clean
    } else {
        Classification::Repaired(repairs)
    }
}

/// Per-reason counters for one sanitization pass (or several merged ones).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SanitizeReport {
    /// Records accepted unchanged.
    pub clean: u64,
    /// Records accepted after normalization.
    pub repaired: u64,
    /// Records dropped.
    pub quarantined: u64,
    /// Quarantined count per [`QuarantineReason::label`].
    pub quarantine_reasons: BTreeMap<String, u64>,
    /// Repair count per [`RepairReason::label`] (a record with two
    /// defects counts once per defect here, once in `repaired`).
    pub repair_reasons: BTreeMap<String, u64>,
}

impl SanitizeReport {
    /// Records that survived into the analysis.
    pub fn accepted(&self) -> u64 {
        self.clean + self.repaired
    }

    /// Total records examined.
    pub fn total(&self) -> u64 {
        self.clean + self.repaired + self.quarantined
    }

    /// Record this report's counters into a metrics registry under
    /// `labels` (deterministic class, DESIGN.md §13): `sanitize.clean` /
    /// `sanitize.repaired` / `sanitize.quarantined`, plus per-reason
    /// `sanitize.quarantine` and `sanitize.repair` counters keyed by a
    /// `reason` label. Also drops one `sanitize.outcome` lifecycle mark
    /// on the trace timeline carrying the same tallies, so each
    /// campaign's quarantine decision is visible in `BENCH_trace.json`
    /// (DESIGN.md §14; counts are pure functions of the data, so the
    /// event args are deterministic class).
    pub fn record(&self, reg: &st_obs::Registry, labels: &[(&str, &str)]) {
        if !reg.is_enabled() {
            return;
        }
        let (clean, repaired, quarantined) =
            (self.clean.to_string(), self.repaired.to_string(), self.quarantined.to_string());
        let mut event_args: Vec<(&str, &str)> = labels.to_vec();
        event_args.push(("clean", &clean));
        event_args.push(("repaired", &repaired));
        event_args.push(("quarantined", &quarantined));
        reg.event("sanitize.outcome", "lifecycle", &event_args);
        reg.add("sanitize.clean", labels, self.clean);
        reg.add("sanitize.repaired", labels, self.repaired);
        reg.add("sanitize.quarantined", labels, self.quarantined);
        for (reason, &n) in &self.quarantine_reasons {
            let mut with_reason: Vec<(&str, &str)> = labels.to_vec();
            with_reason.push(("reason", reason));
            reg.add("sanitize.quarantine", &with_reason, n);
        }
        for (reason, &n) in &self.repair_reasons {
            let mut with_reason: Vec<(&str, &str)> = labels.to_vec();
            with_reason.push(("reason", reason));
            reg.add("sanitize.repair", &with_reason, n);
        }
    }

    /// Fold another report's counters into this one.
    pub fn merge(&mut self, other: &SanitizeReport) {
        self.clean += other.clean;
        self.repaired += other.repaired;
        self.quarantined += other.quarantined;
        for (k, v) in &other.quarantine_reasons {
            *self.quarantine_reasons.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.repair_reasons {
            *self.repair_reasons.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Sanitize a campaign: classify every record, repair the repairable,
/// drop the quarantined, and count everything. Records keep their
/// relative order; duplicates resolve to the *first* submission.
pub fn sanitize(records: Vec<Measurement>) -> (Vec<Measurement>, SanitizeReport) {
    let mut seen = HashSet::with_capacity(records.len());
    sanitize_with_seen(records, &mut seen)
}

/// Incremental form of [`sanitize`]: `seen` carries the accepted test
/// ids across chunks, so sanitizing a campaign chunk-by-chunk (in
/// arrival order, threading one seen-set through) classifies every
/// record — including cross-chunk duplicates — exactly as one batch
/// pass over the concatenated records would. Only *accepted* ids enter
/// `seen`; quarantined records never shadow a later valid submission.
pub fn sanitize_with_seen(
    records: Vec<Measurement>,
    seen: &mut HashSet<u64>,
) -> (Vec<Measurement>, SanitizeReport) {
    let mut report = SanitizeReport::default();
    let mut kept = Vec::with_capacity(records.len());
    for mut m in records {
        match classify(&m, seen.contains(&m.id)) {
            Classification::Clean => {
                report.clean += 1;
                seen.insert(m.id);
                kept.push(m);
            }
            Classification::Repaired(reasons) => {
                for r in &reasons {
                    if matches!(r, RepairReason::DayOutOfRange) {
                        m.day %= 365;
                    }
                    if matches!(r, RepairReason::HourOutOfRange) {
                        m.hour %= 24;
                    }
                    *report.repair_reasons.entry(r.label().into()).or_insert(0) += 1;
                }
                report.repaired += 1;
                seen.insert(m.id);
                kept.push(m);
            }
            Classification::Quarantined(reason) => {
                report.quarantined += 1;
                *report.quarantine_reasons.entry(reason.label().into()).or_insert(0) += 1;
            }
        }
    }
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Access, Platform};
    use st_netsim::Band;

    fn base(id: u64) -> Measurement {
        Measurement {
            id,
            user_id: 10,
            platform: Platform::AndroidApp,
            city: 0,
            day: 100,
            hour: 13,
            down_mbps: 95.0,
            up_mbps: 5.1,
            rtt_ms: 14.0,
            loaded_rtt_ms: 21.0,
            access: Access::Wifi { band: Band::G5, rssi_dbm: -55.0 },
            kernel_memory_gb: Some(7.2),
            truth_tier: Some(2),
        }
    }

    #[test]
    fn clean_records_pass_untouched() {
        let records = vec![base(1), base(2), base(3)];
        let (kept, report) = sanitize(records.clone());
        assert_eq!(kept, records);
        assert_eq!(report.clean, 3);
        assert_eq!(report.repaired, 0);
        assert_eq!(report.quarantined, 0);
        assert!(report.quarantine_reasons.is_empty());
    }

    #[test]
    fn nan_and_zero_throughput_quarantine() {
        let mut nan = base(1);
        nan.down_mbps = f64::NAN;
        let mut zero = base(2);
        zero.up_mbps = 0.0;
        let mut neg = base(3);
        neg.down_mbps = -4.0;
        let (kept, report) = sanitize(vec![nan, zero, neg, base(4)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(report.quarantined, 3);
        assert_eq!(report.quarantine_reasons["non-finite-throughput"], 1);
        assert_eq!(report.quarantine_reasons["non-positive-throughput"], 2);
    }

    #[test]
    fn aborted_test_signature_quarantines() {
        let mut aborted = base(1);
        aborted.rtt_ms = 0.0;
        let (kept, report) = sanitize(vec![aborted, base(2)]);
        assert_eq!(kept.len(), 1);
        assert_eq!(report.quarantine_reasons["aborted-test"], 1);
    }

    #[test]
    fn duplicates_keep_first_submission() {
        let mut second = base(7);
        second.down_mbps = 50.0;
        let (kept, report) = sanitize(vec![base(7), second, base(8)]);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].down_mbps, 95.0, "first submission wins");
        assert_eq!(report.quarantine_reasons["duplicate-id"], 1);
    }

    #[test]
    fn clock_skew_repairs_and_counts() {
        let mut skewed = base(1);
        skewed.day = 500; // 500 % 365 = 135
        skewed.hour = 37; // 37 % 24 = 13
        let (kept, report) = sanitize(vec![skewed]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].day, 135);
        assert_eq!(kept[0].hour, 13);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.repair_reasons["day-out-of-range"], 1);
        assert_eq!(report.repair_reasons["hour-out-of-range"], 1);
    }

    #[test]
    fn quarantine_wins_over_repair() {
        // A record that is both clock-skewed and NaN must land in exactly
        // one bucket: the quarantine.
        let mut m = base(1);
        m.day = 999;
        m.up_mbps = f64::INFINITY;
        assert_eq!(
            classify(&m, false),
            Classification::Quarantined(QuarantineReason::NonFiniteThroughput)
        );
        let (kept, report) = sanitize(vec![m]);
        assert!(kept.is_empty());
        assert_eq!(report.total(), 1);
        assert_eq!(report.repaired, 0);
    }

    #[test]
    fn implausible_values_quarantine() {
        let mut fast = base(1);
        fast.down_mbps = 1e7;
        let mut slowping = base(2);
        slowping.rtt_ms = 1e8;
        let (_, report) = sanitize(vec![fast, slowping]);
        assert_eq!(report.quarantine_reasons["implausible-throughput"], 1);
        assert_eq!(report.quarantine_reasons["implausible-latency"], 1);
    }

    #[test]
    fn merge_accumulates_counters() {
        let mut a = SanitizeReport::default();
        let mut nan = base(1);
        nan.down_mbps = f64::NAN;
        let (_, b) = sanitize(vec![nan, base(2)]);
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.clean, 2);
        assert_eq!(a.quarantine_reasons["non-finite-throughput"], 2);
        assert_eq!(a.total(), 4);
        assert_eq!(a.accepted(), 2);
    }

    // Satellite: merging per-chunk reports must be associative and, in
    // arrival order, equal to the one-shot batch report — the contract
    // the segmented store's incremental ingest front-end leans on.

    fn dirty_stream() -> Vec<Measurement> {
        let mut records = Vec::new();
        for id in 0..40u64 {
            let mut m = base(id);
            match id % 7 {
                1 => m.down_mbps = f64::NAN,
                2 => m.up_mbps = 0.0,
                3 => m.day = 400 + id as u16,
                4 => m.rtt_ms = 0.0,
                5 => m.hour = 30,
                _ => {}
            }
            records.push(m);
        }
        // Cross-chunk duplicates: resubmissions far from the originals,
        // including a resubmission of an id whose first appearance was
        // quarantined (id 8: 8 % 7 == 1, NaN) — that later copy must be
        // *accepted*, not flagged duplicate.
        records.push(base(0));
        records.push(base(8));
        records.push(base(14));
        records
    }

    #[test]
    fn merge_is_associative() {
        let stream = dirty_stream();
        let reports: Vec<SanitizeReport> = stream
            .chunks(5)
            .map(|c| {
                // Independent chunks (fresh seen-sets) — merge only needs
                // counter associativity here, not duplicate threading.
                sanitize(c.to_vec()).1
            })
            .collect();
        let [a, b, c] = [&reports[0], &reports[1], &reports[2]];
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge(merge(a,b),c) == merge(a,merge(b,c))");
        // And against the fold over every chunk, any grouping agrees.
        let mut folded = SanitizeReport::default();
        for r in &reports {
            folded.merge(r);
        }
        let mut paired = SanitizeReport::default();
        for pair in reports.chunks(2) {
            let mut p = pair[0].clone();
            if let Some(second) = pair.get(1) {
                p.merge(second);
            }
            paired.merge(&p);
        }
        assert_eq!(folded, paired);
    }

    #[test]
    fn chunked_sanitize_matches_batch_for_any_chunk_size() {
        let stream = dirty_stream();
        let (batch_kept, batch_report) = sanitize(stream.clone());
        for chunk in [1usize, 2, 5, 7, 16, stream.len()] {
            let mut seen = HashSet::new();
            let mut kept = Vec::new();
            let mut report = SanitizeReport::default();
            for c in stream.chunks(chunk) {
                let (k, r) = sanitize_with_seen(c.to_vec(), &mut seen);
                kept.extend(k);
                report.merge(&r);
            }
            assert_eq!(kept, batch_kept, "chunk size {chunk}: accepted rows");
            assert_eq!(report, batch_report, "chunk size {chunk}: merged report");
        }
    }

    #[test]
    fn quarantined_id_does_not_poison_later_submission() {
        let mut broken = base(9);
        broken.down_mbps = f64::NAN;
        let mut seen = HashSet::new();
        let (kept1, r1) = sanitize_with_seen(vec![broken], &mut seen);
        assert!(kept1.is_empty());
        assert_eq!(r1.quarantined, 1);
        let (kept2, r2) = sanitize_with_seen(vec![base(9)], &mut seen);
        assert_eq!(kept2.len(), 1, "a quarantined id must not mark later valid records duplicate");
        assert_eq!(r2.clean, 1);
        let (kept3, r3) = sanitize_with_seen(vec![base(9)], &mut seen);
        assert!(kept3.is_empty());
        assert_eq!(r3.quarantine_reasons["duplicate-id"], 1);
    }

    #[test]
    fn report_serializes() {
        let (_, report) = sanitize(vec![base(1)]);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"clean\":1"));
    }
}
