//! AIM-style application quality scoring (DESIGN.md §16).
//!
//! A speed test's headline Mbps answers almost no user question; what a
//! user wants to know is whether the connection will *carry their
//! application*. This module maps one session's measured quality vector
//! — throughput, latency, jitter, optional loss — into 0–100 scores for
//! three canonical application classes (video streaming, online gaming,
//! video conferencing), following the weakest-link scheme of the FCC/
//! cloud-speed "application impact metric": each dimension is scored
//! piecewise-linearly between an *unusable* and an *ideal* threshold,
//! and the application score is the minimum across its dimensions,
//! because one saturated dimension ruins the experience no matter how
//! good the rest are.
//!
//! Scoring is a **pure function** of its inputs: given measured values
//! it is trivially reproducible, and the nondeterminism of measurement
//! stays where it belongs (the wall-clock metric class).

use serde::Serialize;

/// One session's measured quality vector, the scoring input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionQuality {
    /// Download throughput, Mbps.
    pub down_mbps: f64,
    /// Upload throughput, Mbps (0.0 when not measured; only
    /// conferencing scores it).
    pub up_mbps: f64,
    /// Round-trip latency, milliseconds.
    pub latency_ms: f64,
    /// Inter-ping jitter, milliseconds.
    pub jitter_ms: f64,
    /// Packet/connection loss fraction in `[0, 1]`, when measured.
    pub loss: Option<f64>,
}

/// Per-application 0–100 scores for one session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct QualityScores {
    /// Video streaming: throughput-bound, latency-tolerant.
    pub streaming: f64,
    /// Online gaming: latency/jitter-bound, throughput-light.
    pub gaming: f64,
    /// Video conferencing: needs both directions plus low jitter.
    pub conferencing: f64,
}

impl QualityScores {
    /// The lowest of the three scores: the session's weakest app class.
    pub fn floor(&self) -> f64 {
        self.streaming.min(self.gaming).min(self.conferencing)
    }
}

/// Piecewise-linear score of a higher-is-better dimension: 0 at or
/// below `unusable`, 100 at or above `ideal`, linear between. NaN
/// scores 0 — a missing measurement is never evidence of quality.
fn score_up(value: f64, unusable: f64, ideal: f64) -> f64 {
    if value.is_nan() {
        return 0.0;
    }
    (100.0 * (value - unusable) / (ideal - unusable)).clamp(0.0, 100.0)
}

/// Piecewise-linear score of a lower-is-better dimension: 100 at or
/// below `ideal`, 0 at or above `unusable`. NaN scores 0.
fn score_down(value: f64, ideal: f64, unusable: f64) -> f64 {
    if value.is_nan() {
        return 0.0;
    }
    (100.0 * (unusable - value) / (unusable - ideal)).clamp(0.0, 100.0)
}

/// Score one session. Thresholds (Mbps / ms) follow the published
/// application requirements the AIM scheme uses: 4K streaming wants
/// ~25 Mbps down; competitive gaming wants sub-50 ms RTT and sub-20 ms
/// jitter on a modest stream; conferencing wants a few Mbps in *both*
/// directions with stable delay. Loss, when measured, gates every
/// class (1% ideal → 10% unusable).
pub fn score(q: &SessionQuality) -> QualityScores {
    let loss_score = match q.loss {
        Some(l) => score_down(l, 0.01, 0.10),
        None => 100.0,
    };
    let streaming = score_up(q.down_mbps, 1.0, 25.0)
        .min(score_down(q.latency_ms, 100.0, 1000.0))
        .min(loss_score);
    let gaming = score_up(q.down_mbps, 0.5, 5.0)
        .min(score_down(q.latency_ms, 50.0, 200.0))
        .min(score_down(q.jitter_ms, 20.0, 100.0))
        .min(loss_score);
    let conferencing = score_up(q.down_mbps, 0.5, 4.0)
        .min(score_up(q.up_mbps, 0.5, 3.0))
        .min(score_down(q.latency_ms, 150.0, 500.0))
        .min(score_down(q.jitter_ms, 30.0, 150.0))
        .min(loss_score);
    QualityScores { streaming, gaming, conferencing }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(down: f64, up: f64, lat: f64, jit: f64) -> SessionQuality {
        SessionQuality { down_mbps: down, up_mbps: up, latency_ms: lat, jitter_ms: jit, loss: None }
    }

    #[test]
    fn a_great_connection_scores_100_everywhere() {
        let s = score(&q(500.0, 50.0, 5.0, 1.0));
        assert_eq!((s.streaming, s.gaming, s.conferencing), (100.0, 100.0, 100.0));
        assert_eq!(s.floor(), 100.0);
    }

    #[test]
    fn a_dead_connection_scores_zero() {
        let s = score(&q(0.0, 0.0, 2000.0, 500.0));
        assert_eq!((s.streaming, s.gaming, s.conferencing), (0.0, 0.0, 0.0));
    }

    #[test]
    fn latency_ruins_gaming_before_streaming() {
        // Fat but laggy: streaming barely notices 180 ms, gaming dies.
        let s = score(&q(300.0, 20.0, 180.0, 5.0));
        assert!(s.gaming < 20.0, "gaming {s:?}");
        assert!(s.streaming > 85.0, "streaming {s:?}");
    }

    #[test]
    fn upload_only_gates_conferencing() {
        let with_up = score(&q(100.0, 10.0, 20.0, 2.0));
        let no_up = score(&q(100.0, 0.0, 20.0, 2.0));
        assert_eq!(no_up.streaming, with_up.streaming);
        assert_eq!(no_up.gaming, with_up.gaming);
        assert_eq!(no_up.conferencing, 0.0);
        assert_eq!(with_up.conferencing, 100.0);
    }

    #[test]
    fn loss_gates_every_class() {
        let clean = SessionQuality { loss: Some(0.005), ..q(100.0, 10.0, 10.0, 2.0) };
        let lossy = SessionQuality { loss: Some(0.10), ..q(100.0, 10.0, 10.0, 2.0) };
        let s_clean = score(&clean);
        let s_lossy = score(&lossy);
        assert_eq!(s_clean.floor(), 100.0);
        assert_eq!((s_lossy.streaming, s_lossy.gaming, s_lossy.conferencing), (0.0, 0.0, 0.0));
    }

    #[test]
    fn nan_inputs_score_zero_not_nan() {
        let s = score(&q(f64::NAN, f64::NAN, f64::NAN, f64::NAN));
        assert_eq!((s.streaming, s.gaming, s.conferencing), (0.0, 0.0, 0.0));
        assert!(!s.floor().is_nan());
    }
}
