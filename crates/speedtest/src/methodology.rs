//! Vendor test methodologies.
//!
//! A methodology turns a sampled network path into reported numbers. The
//! two implementations mirror the vendors' documented behaviour (paper §3,
//! §6.3):
//!
//! * **Ookla**: picks a nearby server, opens multiple parallel TCP
//!   connections, and reports a rate with the ramp-up excluded.
//! * **NDT (M-Lab)**: a single TCP connection for 10 seconds; the reported
//!   rate is the whole-transfer average, so slow start and loss recovery
//!   are all included.

use rand::Rng;
use st_netsim::tcp::{FlowConfig, TcpSimulator};
use st_netsim::{path::PathSnapshot, Mbps};

/// The numbers a methodology reports for one test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Reported download speed.
    pub down: Mbps,
    /// Reported upload speed.
    pub up: Mbps,
    /// Reported (idle) RTT, seconds.
    pub rtt_s: f64,
    /// RTT while the download transfer was loading the path, seconds —
    /// the "latency under load" responsiveness metric.
    pub loaded_rtt_s: f64,
}

/// A speed-test methodology: how a vendor turns a path into a number.
pub trait Methodology {
    /// Vendor/methodology name for reports.
    fn name(&self) -> &'static str;

    /// Run the test against a sampled path state.
    fn measure<R: Rng + ?Sized>(&self, snap: &PathSnapshot, rng: &mut R) -> TestResult;
}

/// Ookla Speedtest: 4–8 parallel connections, ~15 s, ramp-up discarded.
#[derive(Debug, Clone, PartialEq)]
pub struct OoklaMethodology {
    /// Connection-count range sampled per test (the client adapts).
    pub min_connections: usize,
    /// Inclusive upper bound of the connection count.
    pub max_connections: usize,
    /// Test duration per direction, seconds.
    pub duration_s: f64,
    /// Leading seconds excluded from the reported average.
    pub ramp_discard_s: f64,
}

impl Default for OoklaMethodology {
    fn default() -> Self {
        OoklaMethodology {
            min_connections: 4,
            max_connections: 8,
            duration_s: 15.0,
            ramp_discard_s: 3.0,
        }
    }
}

impl Methodology for OoklaMethodology {
    fn name(&self) -> &'static str {
        "Ookla"
    }

    fn measure<R: Rng + ?Sized>(&self, snap: &PathSnapshot, rng: &mut R) -> TestResult {
        let n = rng.gen_range(self.min_connections..=self.max_connections);
        let down_cfg = FlowConfig::new(n, self.duration_s, snap.rtt_s, snap.down_available)
            .with_loss(snap.loss_rate)
            .with_rwnd_total(snap.rwnd_total_bytes);
        let down_sample = TcpSimulator::new(down_cfg).run(self.ramp_discard_s, rng);
        let down = down_sample.mean_steady;

        // Uploads use fewer parallel streams; caps are low enough that the
        // count barely matters.
        let up_cfg = FlowConfig::new(n.min(4), self.duration_s, snap.rtt_s, snap.up_available)
            .with_loss(snap.loss_rate)
            .with_rwnd_total(snap.rwnd_total_bytes);
        let up = TcpSimulator::new(up_cfg).run(self.ramp_discard_s, rng).mean_steady;

        TestResult { down, up, rtt_s: snap.rtt_s, loaded_rtt_s: down_sample.loaded_rtt_s }
    }
}

/// M-Lab NDT: one TCP connection per direction, 10 s, whole-transfer mean.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtMethodology {
    /// Test duration per direction, seconds.
    pub duration_s: f64,
    /// Client-side efficiency of the browser/JavaScript NDT client
    /// relative to raw TCP goodput. Web-based NDT pays WebSocket framing
    /// and JS event-loop costs even on paths the single flow could
    /// otherwise saturate (Clark & Wedeman '21; Feamster & Livingood '20).
    pub client_efficiency: f64,
}

impl Default for NdtMethodology {
    fn default() -> Self {
        NdtMethodology { duration_s: 10.0, client_efficiency: 0.88 }
    }
}

impl Methodology for NdtMethodology {
    fn name(&self) -> &'static str {
        "NDT"
    }

    fn measure<R: Rng + ?Sized>(&self, snap: &PathSnapshot, rng: &mut R) -> TestResult {
        let down_cfg = FlowConfig::new(1, self.duration_s, snap.rtt_s, snap.down_available)
            .with_loss(snap.loss_rate)
            .with_rwnd_total(snap.rwnd_total_bytes);
        let down_sample = TcpSimulator::new(down_cfg).run(0.0, rng);
        let down = down_sample.mean_all * self.client_efficiency;

        let up_cfg = FlowConfig::new(1, self.duration_s, snap.rtt_s, snap.up_available)
            .with_loss(snap.loss_rate)
            .with_rwnd_total(snap.rwnd_total_bytes);
        let up = TcpSimulator::new(up_cfg).run(0.0, rng).mean_all * self.client_efficiency;

        TestResult { down, up, rtt_s: snap.rtt_s, loaded_rtt_s: down_sample.loaded_rtt_s }
    }
}

/// Netflix FAST-style methodology: a small fixed pool of parallel
/// connections to CDN servers, reporting once the rate stabilizes. The
/// paper's intro lists FAST among the popular test platforms; it sits
/// between NDT (one flow, whole-transfer mean) and Ookla (many flows,
/// aggressive ramp discard) — enough parallelism to escape the Mathis
/// ceiling on most residential plans, but less headroom than Ookla's
/// adaptive 4–8 connections at gigabit rates.
#[derive(Debug, Clone, PartialEq)]
pub struct FastMethodology {
    /// Fixed parallel connection count (the web client uses a small pool).
    pub connections: usize,
    /// Test duration per direction, seconds (FAST stops early once
    /// stable; modelled as a shorter fixed window).
    pub duration_s: f64,
    /// Leading seconds excluded from the reported average.
    pub ramp_discard_s: f64,
}

impl Default for FastMethodology {
    fn default() -> Self {
        FastMethodology { connections: 3, duration_s: 8.0, ramp_discard_s: 2.0 }
    }
}

impl Methodology for FastMethodology {
    fn name(&self) -> &'static str {
        "FAST"
    }

    fn measure<R: Rng + ?Sized>(&self, snap: &PathSnapshot, rng: &mut R) -> TestResult {
        let down_cfg =
            FlowConfig::new(self.connections, self.duration_s, snap.rtt_s, snap.down_available)
                .with_loss(snap.loss_rate)
                .with_rwnd_total(snap.rwnd_total_bytes);
        let down_sample = TcpSimulator::new(down_cfg).run(self.ramp_discard_s, rng);
        let down = down_sample.mean_steady;

        // FAST's upload test uses the same small pool.
        let up_cfg =
            FlowConfig::new(self.connections, self.duration_s, snap.rtt_s, snap.up_available)
                .with_loss(snap.loss_rate)
                .with_rwnd_total(snap.rwnd_total_bytes);
        let up = TcpSimulator::new(up_cfg).run(self.ramp_discard_s, rng).mean_steady;

        TestResult { down, up, rtt_s: snap.rtt_s, loaded_rtt_s: down_sample.loaded_rtt_s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    fn snapshot(down: f64, up: f64, rtt_s: f64, loss: f64) -> PathSnapshot {
        PathSnapshot {
            down_available: Mbps(down),
            up_available: Mbps(up),
            rtt_s,
            loss_rate: loss,
            rwnd_total_bytes: 16.0 * 1024.0 * 1024.0,
            device_cap: Mbps(10_000.0),
        }
    }

    fn mean(results: &[TestResult], f: impl Fn(&TestResult) -> f64) -> f64 {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    }

    fn run_many<M: Methodology>(m: &M, snap: &PathSnapshot, n: usize) -> Vec<TestResult> {
        let mut r = rng();
        (0..n).map(|_| m.measure(snap, &mut r)).collect()
    }

    #[test]
    fn both_respect_the_bottleneck() {
        let snap = snapshot(200.0, 10.0, 0.015, 1e-5);
        for res in run_many(&OoklaMethodology::default(), &snap, 10) {
            assert!(res.down.0 <= 200.0 + 1e-9);
            assert!(res.up.0 <= 10.0 + 1e-9);
        }
        for res in run_many(&NdtMethodology::default(), &snap, 10) {
            assert!(res.down.0 <= 200.0 + 1e-9);
            assert!(res.up.0 <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn ookla_saturates_low_tier_plans() {
        // 100 Mbps available, clean path: Ookla should report ≥ 90%.
        let snap = snapshot(100.0, 5.0, 0.015, 1e-5);
        let res = run_many(&OoklaMethodology::default(), &snap, 20);
        let d = mean(&res, |r| r.down.0);
        assert!(d > 90.0, "Ookla mean {d}");
    }

    #[test]
    fn ndt_under_reports_on_fat_lossy_paths() {
        // The §6.3 effect: same path, single flow ~2× low at high rates.
        let snap = snapshot(800.0, 15.0, 0.015, 1e-4);
        let ookla = mean(&run_many(&OoklaMethodology::default(), &snap, 25), |r| r.down.0);
        let ndt = mean(&run_many(&NdtMethodology::default(), &snap, 25), |r| r.down.0);
        assert!(ndt < ookla / 1.5, "NDT {ndt} should lag Ookla {ookla} by well over 1.5x");
    }

    #[test]
    fn vendors_agree_on_upload() {
        // Upload caps are small; both methodologies saturate them (§4.1).
        let snap = snapshot(400.0, 10.0, 0.015, 1e-5);
        let ookla = mean(&run_many(&OoklaMethodology::default(), &snap, 20), |r| r.up.0);
        let ndt = mean(&run_many(&NdtMethodology::default(), &snap, 20), |r| r.up.0);
        assert!((ookla - ndt).abs() < 0.15 * ookla, "ookla {ookla} vs ndt {ndt}");
        assert!(ookla > 9.0 && ndt > 8.5);
    }

    #[test]
    fn names() {
        assert_eq!(OoklaMethodology::default().name(), "Ookla");
        assert_eq!(NdtMethodology::default().name(), "NDT");
        assert_eq!(FastMethodology::default().name(), "FAST");
    }

    #[test]
    fn fast_sits_between_ndt_and_ookla_on_fat_lossy_paths() {
        let snap = snapshot(800.0, 15.0, 0.015, 1e-4);
        let ookla = mean(&run_many(&OoklaMethodology::default(), &snap, 25), |r| r.down.0);
        let fast = mean(&run_many(&FastMethodology::default(), &snap, 25), |r| r.down.0);
        let ndt = mean(&run_many(&NdtMethodology::default(), &snap, 25), |r| r.down.0);
        assert!(fast > ndt, "FAST {fast} should beat single-flow NDT {ndt}");
        assert!(fast < ookla * 1.05, "FAST {fast} should not beat Ookla {ookla} by much");
    }

    #[test]
    fn fast_saturates_moderate_plans() {
        let snap = snapshot(150.0, 10.0, 0.015, 1e-5);
        let fast = mean(&run_many(&FastMethodology::default(), &snap, 20), |r| r.down.0);
        assert!(fast > 135.0, "FAST {fast} on a 150 Mbps plan");
    }

    #[test]
    fn results_are_valid_rates() {
        let snap = snapshot(50.0, 5.0, 0.03, 1e-3);
        for res in run_many(&OoklaMethodology::default(), &snap, 5) {
            assert!(res.down.is_valid() && res.up.is_valid());
            assert!(res.rtt_s > 0.0);
            assert!(res.loaded_rtt_s >= res.rtt_s, "load cannot lower latency");
        }
    }
}
