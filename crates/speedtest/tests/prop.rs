//! Property-based tests for the speed-test domain model.

use proptest::prelude::*;
use st_netsim::Mbps;
use st_speedtest::{pair_ndt_tests, NdtEvent, PlanCatalog};

/// Strategy: a valid plan catalog (distinct download caps).
fn catalog_strategy() -> impl Strategy<Value = PlanCatalog> {
    prop::collection::btree_set(1u32..2000, 1..8).prop_flat_map(|downs| {
        let downs: Vec<u32> = downs.into_iter().collect();
        let n = downs.len();
        prop::collection::vec(1.0f64..40.0, n..=n).prop_map(move |ups| {
            let speeds: Vec<(f64, f64)> =
                downs.iter().zip(&ups).map(|(&d, &u)| (d as f64, u)).collect();
            PlanCatalog::new("prop-ISP", &speeds)
        })
    })
}

fn events_strategy() -> impl Strategy<Value = Vec<NdtEvent>> {
    prop::collection::vec((0u64..6, 0.0f64..5000.0, 0.1f64..500.0), 0..40).prop_map(|raw| {
        raw.into_iter()
            .map(|(client, start, mbps)| NdtEvent {
                client_ip: client,
                server_ip: 1,
                start_s: start,
                mbps,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn catalog_tiers_are_dense_and_sorted(cat in catalog_strategy()) {
        let plans = cat.plans();
        for (i, p) in plans.iter().enumerate() {
            prop_assert_eq!(p.tier, i + 1);
        }
        for w in plans.windows(2) {
            prop_assert!(w[0].down.0 < w[1].down.0);
        }
    }

    #[test]
    fn tier_groups_partition_the_catalog(cat in catalog_strategy()) {
        let groups = cat.tier_groups();
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.tiers.clone()).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (1..=cat.len()).collect();
        prop_assert_eq!(seen, expect);
        // Groups ascend by upload cap.
        for w in groups.windows(2) {
            prop_assert!(w[0].up.0 < w[1].up.0);
        }
    }

    #[test]
    fn nearest_lookups_return_catalog_members(cat in catalog_strategy(), probe in 0.0f64..3000.0) {
        let tier = cat.nearest_tier_by_download(Mbps(probe));
        prop_assert!(cat.plan(tier).is_some());
        let cap = cat.nearest_upload_cap(Mbps(probe));
        prop_assert!(cat.upload_caps().contains(&cap));
    }

    #[test]
    fn nearest_tier_is_actually_nearest(cat in catalog_strategy(), probe in 0.0f64..3000.0) {
        let tier = cat.nearest_tier_by_download(Mbps(probe));
        let chosen = (cat.plan(tier).unwrap().down.0 - probe).abs();
        for p in cat.plans() {
            prop_assert!(chosen <= (p.down.0 - probe).abs() + 1e-9);
        }
    }

    #[test]
    fn pairing_consumes_each_upload_at_most_once(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 0.0f64..500.0,
    ) {
        let pairs = pair_ndt_tests(&downs, &ups, window);
        prop_assert_eq!(pairs.len(), downs.len());
        // Each upload event (identified by its start time + client) is used
        // at most once.
        let mut used: Vec<(u64, u64)> = pairs
            .iter()
            .filter_map(|p| p.upload.as_ref())
            .map(|u| (u.client_ip, u.start_s.to_bits()))
            .collect();
        let before = used.len();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(used.len(), before, "an upload was paired twice");
    }

    #[test]
    fn pairing_respects_window_and_endpoints(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 0.0f64..500.0,
    ) {
        for p in pair_ndt_tests(&downs, &ups, window) {
            if let Some(u) = &p.upload {
                prop_assert_eq!(u.client_ip, p.download.client_ip);
                prop_assert!(u.start_s >= p.download.start_s - 1e-9);
                prop_assert!(u.start_s <= p.download.start_s + window + 1e-9);
            }
        }
    }

    #[test]
    fn pairing_prefers_the_earliest_candidate(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 1.0f64..500.0,
    ) {
        // For every unpaired upload that was in-window for some download,
        // the download must have received an upload no later than it.
        let pairs = pair_ndt_tests(&downs, &ups, window);
        for p in &pairs {
            if let Some(u) = &p.upload {
                for candidate in &ups {
                    if candidate.client_ip == p.download.client_ip
                        && candidate.start_s >= p.download.start_s
                        && candidate.start_s < u.start_s
                    {
                        // An earlier candidate existed — it must have been
                        // consumed by some (other) download.
                        let consumed = pairs.iter().any(|q| {
                            q.upload.as_ref().map(|x| {
                                x.client_ip == candidate.client_ip
                                    && x.start_s == candidate.start_s
                            }) == Some(true)
                        });
                        prop_assert!(
                            consumed,
                            "skipped an earlier in-window upload that nobody consumed"
                        );
                    }
                }
            }
        }
    }
}
