//! Property-based tests for the speed-test domain model.

use proptest::prelude::*;
use st_netsim::{Band, Mbps};
use st_speedtest::sanitize::{MAX_PLAUSIBLE_MBPS, MAX_PLAUSIBLE_RTT_MS};
use st_speedtest::{
    classify, pair_ndt_tests, sanitize, Access, Classification, Measurement, NdtEvent, PlanCatalog,
    Platform,
};
use std::collections::HashSet;

/// Strategy: a valid plan catalog (distinct download caps).
fn catalog_strategy() -> impl Strategy<Value = PlanCatalog> {
    prop::collection::btree_set(1u32..2000, 1..8).prop_flat_map(|downs| {
        let downs: Vec<u32> = downs.into_iter().collect();
        let n = downs.len();
        prop::collection::vec(1.0f64..40.0, n..=n).prop_map(move |ups| {
            let speeds: Vec<(f64, f64)> =
                downs.iter().zip(&ups).map(|(&d, &u)| (d as f64, u)).collect();
            PlanCatalog::new("prop-ISP", &speeds)
        })
    })
}

fn events_strategy() -> impl Strategy<Value = Vec<NdtEvent>> {
    prop::collection::vec((0u64..6, 0.0f64..5000.0, 0.1f64..500.0), 0..40).prop_map(|raw| {
        raw.into_iter()
            .map(|(client, start, mbps)| NdtEvent {
                client_ip: client,
                server_ip: 1,
                start_s: start,
                mbps,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn catalog_tiers_are_dense_and_sorted(cat in catalog_strategy()) {
        let plans = cat.plans();
        for (i, p) in plans.iter().enumerate() {
            prop_assert_eq!(p.tier, i + 1);
        }
        for w in plans.windows(2) {
            prop_assert!(w[0].down.0 < w[1].down.0);
        }
    }

    #[test]
    fn tier_groups_partition_the_catalog(cat in catalog_strategy()) {
        let groups = cat.tier_groups();
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.tiers.clone()).collect();
        seen.sort_unstable();
        let expect: Vec<usize> = (1..=cat.len()).collect();
        prop_assert_eq!(seen, expect);
        // Groups ascend by upload cap.
        for w in groups.windows(2) {
            prop_assert!(w[0].up.0 < w[1].up.0);
        }
    }

    #[test]
    fn nearest_lookups_return_catalog_members(cat in catalog_strategy(), probe in 0.0f64..3000.0) {
        let tier = cat.nearest_tier_by_download(Mbps(probe));
        prop_assert!(cat.plan(tier).is_some());
        let cap = cat.nearest_upload_cap(Mbps(probe));
        prop_assert!(cat.upload_caps().contains(&cap));
    }

    #[test]
    fn nearest_tier_is_actually_nearest(cat in catalog_strategy(), probe in 0.0f64..3000.0) {
        let tier = cat.nearest_tier_by_download(Mbps(probe));
        let chosen = (cat.plan(tier).unwrap().down.0 - probe).abs();
        for p in cat.plans() {
            prop_assert!(chosen <= (p.down.0 - probe).abs() + 1e-9);
        }
    }

    #[test]
    fn pairing_consumes_each_upload_at_most_once(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 0.0f64..500.0,
    ) {
        let pairs = pair_ndt_tests(&downs, &ups, window);
        prop_assert_eq!(pairs.len(), downs.len());
        // Each upload event (identified by its start time + client) is used
        // at most once.
        let mut used: Vec<(u64, u64)> = pairs
            .iter()
            .filter_map(|p| p.upload.as_ref())
            .map(|u| (u.client_ip, u.start_s.to_bits()))
            .collect();
        let before = used.len();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(used.len(), before, "an upload was paired twice");
    }

    #[test]
    fn pairing_respects_window_and_endpoints(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 0.0f64..500.0,
    ) {
        for p in pair_ndt_tests(&downs, &ups, window) {
            if let Some(u) = &p.upload {
                prop_assert_eq!(u.client_ip, p.download.client_ip);
                prop_assert!(u.start_s >= p.download.start_s - 1e-9);
                prop_assert!(u.start_s <= p.download.start_s + window + 1e-9);
            }
        }
    }

    #[test]
    fn pairing_prefers_the_earliest_candidate(
        downs in events_strategy(),
        ups in events_strategy(),
        window in 1.0f64..500.0,
    ) {
        // For every unpaired upload that was in-window for some download,
        // the download must have received an upload no later than it.
        let pairs = pair_ndt_tests(&downs, &ups, window);
        for p in &pairs {
            if let Some(u) = &p.upload {
                for candidate in &ups {
                    if candidate.client_ip == p.download.client_ip
                        && candidate.start_s >= p.download.start_s
                        && candidate.start_s < u.start_s
                    {
                        // An earlier candidate existed — it must have been
                        // consumed by some (other) download.
                        let consumed = pairs.iter().any(|q| {
                            q.upload.as_ref().map(|x| {
                                x.client_ip == candidate.client_ip
                                    && x.start_s == candidate.start_s
                            }) == Some(true)
                        });
                        prop_assert!(
                            consumed,
                            "skipped an earlier in-window upload that nobody consumed"
                        );
                    }
                }
            }
        }
    }
}

/// Strategy: a quality value drawn from a pool of pathological and sane
/// numbers — NaN, infinities, negatives, zero, implausibly large, normal.
fn dirty_value_strategy() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -10.0,
        0.0,
        1e9,
        1e8,
        950.0,
        50.0,
        0.25,
    ])
}

/// Strategy: a measurement whose numeric fields may each be corrupt, with
/// ids drawn from a small pool so duplicate submissions occur.
fn corrupt_measurement_strategy() -> impl Strategy<Value = Measurement> {
    (
        (0u64..30, dirty_value_strategy(), dirty_value_strategy()),
        (dirty_value_strategy(), dirty_value_strategy(), 0u16..1200, 0u8..72),
    )
        .prop_map(|((id, down, up), (rtt, loaded, day, hour))| Measurement {
            id,
            user_id: id % 7,
            platform: Platform::AndroidApp,
            city: 0,
            day,
            hour,
            down_mbps: down,
            up_mbps: up,
            rtt_ms: rtt,
            loaded_rtt_ms: loaded,
            access: Access::Wifi { band: Band::G5, rssi_dbm: -55.0 },
            kernel_memory_gb: Some(4.0),
            truth_tier: Some(1),
        })
}

/// The invariants every record accepted by the sanitizer must satisfy.
fn is_acceptable(m: &Measurement) -> bool {
    m.down_mbps.is_finite()
        && m.down_mbps > 0.0
        && m.down_mbps <= MAX_PLAUSIBLE_MBPS
        && m.up_mbps.is_finite()
        && m.up_mbps > 0.0
        && m.up_mbps <= MAX_PLAUSIBLE_MBPS
        && m.rtt_ms.is_finite()
        && m.rtt_ms > 0.0
        && m.rtt_ms <= MAX_PLAUSIBLE_RTT_MS
        && m.loaded_rtt_ms.is_finite()
        && m.loaded_rtt_ms <= MAX_PLAUSIBLE_RTT_MS
        && m.day < 365
        && m.hour < 24
}

proptest! {
    #[test]
    fn sanitizer_never_panics_and_counts_add_up(
        ms in prop::collection::vec(corrupt_measurement_strategy(), 0..80),
    ) {
        let n = ms.len();
        let (kept, report) = sanitize(ms);
        prop_assert_eq!(report.total() as usize, n);
        prop_assert_eq!(report.accepted() as usize, kept.len());
        // Per-reason counters partition the per-class totals exactly.
        let by_reason: u64 = report.quarantine_reasons.values().sum();
        prop_assert_eq!(by_reason, report.quarantined);
        prop_assert!(report.repair_reasons.values().sum::<u64>() >= report.repaired);
        // Every survivor satisfies the full invariant set, ids unique.
        let mut seen = HashSet::new();
        for m in &kept {
            prop_assert!(is_acceptable(m), "unacceptable record survived: {m:?}");
            prop_assert!(seen.insert(m.id), "duplicate id {} survived", m.id);
        }
    }

    #[test]
    fn classification_lands_in_exactly_one_stable_bucket(
        m in corrupt_measurement_strategy(),
    ) {
        // Pure and repeatable.
        let first = classify(&m, false);
        prop_assert_eq!(&first, &classify(&m, false));
        // The verdict agrees with what sanitize() does to a 1-record batch.
        let (kept, report) = sanitize(vec![m.clone()]);
        match first {
            Classification::Clean => {
                prop_assert_eq!(report.clean, 1);
                prop_assert_eq!(&kept[..], std::slice::from_ref(&m));
            }
            Classification::Repaired(_) => {
                prop_assert_eq!(report.repaired, 1);
                prop_assert!(is_acceptable(&kept[0]), "repair left an invalid record");
            }
            Classification::Quarantined(_) => {
                prop_assert_eq!(report.quarantined, 1);
                prop_assert!(kept.is_empty());
            }
        }
        // A record sanitize() accepted must be acceptable; one it dropped
        // must not be.
        prop_assert_eq!(kept.len() == 1, is_acceptable(&m) || report.repaired == 1);
    }

    #[test]
    fn duplicate_flag_only_tightens_the_verdict(m in corrupt_measurement_strategy()) {
        // Marking a record as duplicate never turns a quarantine into an
        // acceptance, and only reroutes otherwise-acceptable records.
        let plain = classify(&m, false);
        let dup = classify(&m, true);
        match (plain, dup) {
            (Classification::Quarantined(a), Classification::Quarantined(b)) => {
                prop_assert_eq!(a, b, "duplicate flag changed an existing quarantine reason");
            }
            (Classification::Clean | Classification::Repaired(_), q) => {
                prop_assert_eq!(
                    q,
                    Classification::Quarantined(
                        st_speedtest::QuarantineReason::DuplicateId
                    )
                );
            }
            (Classification::Quarantined(_), other) => {
                prop_assert!(false, "quarantine became {other:?} under duplicate flag");
            }
        }
    }
}
