//! Chaos acceptance test (DESIGN.md §16): ~200 concurrent sessions
//! against a 4-server fault-injecting pool, ≥30% of sessions faulted.
//! The campaign must not panic, every session must be classified, the
//! deterministic metric class must be byte-identical across repeat runs
//! *and* across parallelism levels, and surviving sessions must still
//! measure the shaped link.

use st_obs::Registry;
use st_speedtest::wire::ShapedServer;
use st_speedtest::{run_load, FaultProfile, LoadOptions, LoadSummary};
use std::time::Duration;

const SESSIONS: usize = 200;
const POOL: usize = 4;
const FAULT_RATE: f64 = 0.35;
const DOWN_MBPS: f64 = 400.0;

fn campaign(parallelism: usize) -> (String, LoadSummary) {
    let profile = FaultProfile::new(0xc0ffee, FAULT_RATE);
    let servers: Vec<ShapedServer> = (0..POOL)
        .map(|_| ShapedServer::start_with_faults(DOWN_MBPS, 50.0, profile).unwrap())
        .collect();
    let pool: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let mut opts = LoadOptions::new(SESSIONS);
    opts.duration = Duration::from_millis(100);
    opts.ramp_discard = Duration::from_millis(30);
    opts.n_pings = 2;
    opts.parallelism = parallelism;
    opts.faults = Some(profile);
    let reg = Registry::new();
    let summary = run_load(&pool, &opts, &reg);
    (reg.snapshot().deterministic_json(), summary)
}

#[test]
fn chaos_campaign_survives_classifies_and_is_deterministic() {
    let (json_a, summary_a) = campaign(16);
    let (json_b, summary_b) = campaign(16);
    let (json_c, summary_c) = campaign(8);

    // Determinism: the exact-compare surface is byte-identical across
    // repeat runs and across parallelism levels.
    assert_eq!(json_a, json_b, "deterministic metrics drifted between identical runs");
    assert_eq!(json_a, json_c, "deterministic metrics depend on parallelism");

    // Every session is classified — no silent drops.
    let s = &summary_a;
    assert_eq!(s.sessions_total, SESSIONS as u64);
    assert_eq!(
        s.sessions_ok
            + s.sessions_retried
            + s.sessions_degraded
            + s.sessions_abandoned
            + s.sessions_skipped,
        s.sessions_total,
        "classification classes must partition the campaign: {s:?}"
    );
    assert_eq!(s.reports.len(), SESSIONS, "one report per session");
    assert!(
        s.reports.iter().all(|r| r.completed || r.error.is_some()),
        "a failed session must carry its error"
    );

    // The profile dealt ≥ 30% faults (0.35 nominal; the schedule is
    // seeded, so the realized count is a fixed number we bound loosely).
    let faulted: u64 = s.faults_planned.values().sum();
    assert!(faulted as f64 >= 0.30 * SESSIONS as f64, "only {faulted}/{SESSIONS} sessions faulted");

    // Execution matched the plan: the injected chaos is exactly the
    // chaos that happened, on every run.
    for (name, sum) in [("runA", &summary_a), ("runB", &summary_b), ("runC", &summary_c)] {
        assert_eq!(sum.unexpected_outcomes, 0, "{name}: actual fates diverged from the plan");
        assert_eq!(
            sum.sessions_completed,
            sum.sessions_ok + sum.sessions_retried + sum.sessions_degraded,
            "{name}: completions must equal the planned surviving classes"
        );
    }

    // Survivors measured a real link: positive throughput, and healthy
    // sessions can't beat the shaper by more than bucket-burst slack.
    assert!(!s.degraded, "a 35%-fault campaign must keep survivors");
    assert!(s.mean_down_mbps > 0.0, "surviving throughput vanished: {s:?}");
    let healthy_max = s
        .reports
        .iter()
        .filter(|r| r.completed && r.fault.is_none())
        .map(|r| r.down_mbps)
        .fold(0.0f64, f64::max);
    assert!(
        healthy_max > 0.0 && healthy_max < DOWN_MBPS * 2.0,
        "healthy sessions measured {healthy_max} Mbps against a {DOWN_MBPS} Mbps shaper"
    );
}
