//! Property-based tests for the chaos-harness building blocks: the
//! retry/backoff schedule, the circuit-breaker state machine, the fault
//! scheduler, and the quality scorer (DESIGN.md §16).

use proptest::prelude::*;
use st_speedtest::{
    score, Admission, BackoffSchedule, BreakerState, CircuitBreaker, FaultProfile, SessionQuality,
};
use std::time::Duration;

proptest! {
    /// The pre-jitter schedule is a capped monotone doubling, and the
    /// jittered delay is deterministic and bounded by
    /// `raw * (1 + jitter_frac)`.
    #[test]
    fn backoff_is_capped_monotone_doubling_with_bounded_jitter(
        base_ms in 1u64..500,
        cap_mult in 1u64..16,
        jitter_frac in 0.0f64..1.0,
        seed in any::<u64>(),
        session in any::<u64>(),
    ) {
        let cap_ms = base_ms * cap_mult;
        let sched = BackoffSchedule {
            base: Duration::from_millis(base_ms),
            cap: Duration::from_millis(cap_ms),
            jitter_frac,
            seed,
        };
        let cap_s = Duration::from_millis(cap_ms).as_secs_f64();
        let mut prev_raw = 0.0f64;
        for retry in 0..12u32 {
            let raw = sched.raw_delay(retry).as_secs_f64();
            prop_assert!(raw >= prev_raw, "schedule must be monotone: {raw} < {prev_raw}");
            prop_assert!(raw <= cap_s + 1e-12, "raw {raw} above cap {cap_s}");
            if retry > 0 {
                let expect = (prev_raw * 2.0).min(cap_s);
                prop_assert!((raw - expect).abs() < 1e-9,
                    "retry {retry}: raw {raw} is neither doubled nor capped ({expect})");
            }
            prev_raw = raw;

            let jittered = sched.delay(session, retry).as_secs_f64();
            prop_assert!(jittered >= raw - 1e-12, "jitter may only lengthen the delay");
            prop_assert!(jittered < raw * (1.0 + jitter_frac) + 1e-9,
                "jitter above bound: {jittered} vs raw {raw} frac {jitter_frac}");
            prop_assert_eq!(sched.delay(session, retry), sched.delay(session, retry));
        }
    }

    /// Driven over an arbitrary outcome sequence, the breaker never
    /// serves from the open state, closed states always admit, and a
    /// probe is only handed out by a non-closed state.
    #[test]
    fn breaker_never_serves_while_open(
        outcomes in prop::collection::vec(any::<bool>(), 1..300),
        k in 1u32..6,
        cooldown in 0u32..8,
    ) {
        let mut br = CircuitBreaker::new(k, cooldown);
        let mut skips_since_trip = 0u32;
        for &ok in &outcomes {
            let before = br.state();
            match br.admit() {
                Admission::Admit => {
                    prop_assert_eq!(before, BreakerState::Closed,
                        "a plain admission must come from a closed breaker");
                    br.record(ok);
                }
                Admission::AdmitProbe => {
                    prop_assert!(before != BreakerState::Closed,
                        "a probe can only follow a trip");
                    prop_assert!(skips_since_trip >= cooldown,
                        "probed after {skips_since_trip} skips, cooldown {cooldown}");
                    br.record(ok);
                    skips_since_trip = 0;
                }
                Admission::Skip => {
                    prop_assert!(before != BreakerState::Closed,
                        "a closed breaker must serve");
                    skips_since_trip += 1;
                }
            }
            if br.state() == BreakerState::Open && before != BreakerState::Open {
                skips_since_trip = 0;
            }
        }
        // Conservation: everything the breaker counted happened.
        prop_assert!(br.probes() <= br.trips(),
            "each probe follows a trip: {} probes, {} trips", br.probes(), br.trips());
    }

    /// While a probe is in flight, every other admission is skipped —
    /// the half-open state serves exactly one unit of work.
    #[test]
    fn half_open_admits_exactly_one_probe_until_it_resolves(
        k in 1u32..4,
        cooldown in 0u32..6,
        rivals in 1usize..10,
        probe_ok in any::<bool>(),
    ) {
        let mut br = CircuitBreaker::new(k, cooldown);
        for _ in 0..k {
            prop_assert_eq!(br.admit(), Admission::Admit);
            br.record(false);
        }
        prop_assert_eq!(br.state(), BreakerState::Open);
        for _ in 0..cooldown {
            prop_assert_eq!(br.admit(), Admission::Skip);
        }
        prop_assert_eq!(br.admit(), Admission::AdmitProbe);
        for _ in 0..rivals {
            prop_assert_eq!(br.admit(), Admission::Skip, "rival admitted beside the probe");
        }
        br.record(probe_ok);
        if probe_ok {
            prop_assert_eq!(br.state(), BreakerState::Closed);
            prop_assert_eq!(br.admit(), Admission::Admit);
        } else {
            prop_assert_eq!(br.state(), BreakerState::Open);
            prop_assert_eq!(br.trips(), 2);
        }
    }

    /// The fault scheduler is a pure function of `(seed, session)` that
    /// respects its rate bounds and always plans survivable soft faults.
    #[test]
    fn fault_plans_are_pure_and_well_formed(
        seed in any::<u64>(),
        rate in 0.0f64..=1.0,
        session in any::<u64>(),
    ) {
        let p = FaultProfile::new(seed, rate);
        let plan = p.plan_for(session);
        prop_assert_eq!(plan, p.plan_for(session), "plan must be pure");
        if rate == 0.0 {
            prop_assert!(plan.kind.is_none());
        }
        if let Some(_kind) = plan.kind {
            prop_assert!((1..=p.max_faulted_attempts).contains(&plan.faulted_attempts));
            prop_assert!(plan.chunks_before >= 1, "soft faults must move at least one chunk");
        }
    }

    /// Quality scores are always finite and inside [0, 100], whatever
    /// the measured vector looks like — including NaN components.
    #[test]
    fn scores_are_always_finite_and_bounded(
        down in -10.0f64..2000.0,
        up in -10.0f64..2000.0,
        lat in -10.0f64..5000.0,
        jit in -10.0f64..5000.0,
        loss in -0.5f64..1.5,
        nan_mask in 0u8..64,
    ) {
        // Bits of `nan_mask` turn components into NaN / drop the loss:
        // a missing measurement must score 0, never poison the result.
        let nan_if = |bit: u8, v: f64| if nan_mask & (1 << bit) != 0 { f64::NAN } else { v };
        let q = SessionQuality {
            down_mbps: nan_if(0, down),
            up_mbps: nan_if(1, up),
            latency_ms: nan_if(2, lat),
            jitter_ms: nan_if(3, jit),
            loss: if nan_mask & (1 << 4) != 0 { None } else { Some(nan_if(5, loss)) },
        };
        let s = score(&q);
        for v in [s.streaming, s.gaming, s.conferencing, s.floor()] {
            prop_assert!(v.is_finite(), "score must be finite: {s:?} from {q:?}");
            prop_assert!((0.0..=100.0).contains(&v), "score out of range: {s:?}");
        }
    }
}
