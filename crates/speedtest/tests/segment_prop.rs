//! Property tests for the segmented store: any chunking of any record
//! stream is indistinguishable from the monolithic batch path
//! (DESIGN.md §17).
//!
//! The invariants under test:
//!
//! * the incremental sanitizer (one seen-id set threaded across chunks)
//!   classifies exactly as one batch pass would — duplicate detection
//!   included, across chunk boundaries;
//! * segment boundaries are a pure function of the accepted-row
//!   sequence and the seal threshold, never of chunk sizes;
//! * segmented column views, selections, derived columns, assigned
//!   columns, cap counts, and `to_frame` are bit-identical to the
//!   monolithic store for every chunking — 1-row chunks and chunks
//!   straddling the KERNEL_BLOCK (64) and EM_BLOCK (512) boundaries of
//!   the blocked kernels included.

use proptest::prelude::*;
use st_netsim::Band;
use st_speedtest::{
    sanitize, Access, CampaignStore, Measurement, PlanCatalog, Platform, SegmentedStore, Selection,
};

/// A quality value drawn from a pool of pathological and sane numbers,
/// so streams mix clean, repairable, and quarantined records.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![f64::NAN, f64::INFINITY, -5.0, 0.0, 1e9, 900.0, 120.0, 35.0, 0.5])
}

/// A measurement with possibly-corrupt numerics and ids drawn from a
/// small pool, so cross-chunk duplicate submissions occur routinely.
fn measurement_strategy() -> impl Strategy<Value = Measurement> {
    (
        (0u64..600, 0u8..4, value_strategy(), value_strategy()),
        (value_strategy(), 0u16..400, 0u8..25, (0u8..4, 1.0f64..16.0)),
    )
        .prop_map(|((id, plat, down, up), (rtt, day, hour, (mem_known, mem)))| {
            let mem = (mem_known > 0).then_some(mem);
            let platform = match plat {
                0 => Platform::AndroidApp,
                1 => Platform::IosApp,
                2 => Platform::Web,
                _ => Platform::NdtWeb,
            };
            let access = match id % 3 {
                0 => Access::Wifi {
                    band: if id % 2 == 0 { Band::G2_4 } else { Band::G5 },
                    rssi_dbm: -40.0 - (id % 40) as f64,
                },
                1 => Access::Ethernet,
                _ => Access::Unknown,
            };
            Measurement {
                id,
                user_id: id % 17,
                platform,
                city: (id % 4) as u8,
                day,
                hour,
                down_mbps: down,
                up_mbps: up,
                rtt_ms: rtt,
                loaded_rtt_ms: if rtt.is_finite() { rtt * 1.3 } else { rtt },
                access,
                kernel_memory_gb: mem,
                truth_tier: (id % 5 > 0).then_some(1 + (id % 3) as usize),
            }
        })
}

/// Chunk sizes that exercise the interesting boundaries: single rows,
/// straddles of KERNEL_BLOCK = 64, and straddles of EM_BLOCK = 512.
fn chunk_size_strategy() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 5, 17, 63, 64, 65, 127, 511, 512, 513])
}

/// Replay `stream` into a segmented store, cycling through the chunk
/// plan's sizes, then freeze.
fn ingest(stream: &[Measurement], plan: &[usize], seal_rows: usize) -> SegmentedStore {
    let mut store = SegmentedStore::builder(seal_rows);
    let mut rest = stream;
    let mut i = 0;
    while !rest.is_empty() {
        let take = plan[i % plan.len()].min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        store.append_chunk(chunk.to_vec()).expect("stores accept chunks until frozen");
        rest = tail;
        i += 1;
    }
    store.freeze().unwrap();
    store
}

/// The batch reference: one sanitize pass, one monolithic store.
fn monolithic(stream: &[Measurement]) -> (CampaignStore, st_speedtest::SanitizeReport) {
    let (kept, report) = sanitize(stream.to_vec());
    (CampaignStore::from_measurements(&kept), report)
}

/// Bit-exact f64 comparison (NaN-tolerant; `==` is not).
fn bits(vals: impl IntoIterator<Item = f64>) -> Vec<u64> {
    vals.into_iter().map(f64::to_bits).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_chunking_matches_the_batch_store(
        stream in prop::collection::vec(measurement_strategy(), 0..300),
        plan in prop::collection::vec(chunk_size_strategy(), 1..4),
        seal_rows in prop::sample::select(vec![1usize, 3, 16, 63, 64, 65, 100, 8192]),
    ) {
        let (mono, batch_report) = monolithic(&stream);
        let seg = ingest(&stream, &plan, seal_rows);

        // The incremental sanitizer classifies exactly as the batch pass.
        prop_assert_eq!(seg.report(), &batch_report);
        prop_assert_eq!(seg.len(), mono.len());

        // Base and derived columns are bit-identical across any chunking.
        prop_assert_eq!(seg.id().to_vec(), mono.id().to_vec());
        prop_assert_eq!(seg.user_id().to_vec(), mono.user_id().to_vec());
        prop_assert_eq!(bits(seg.down().iter().copied()), bits(mono.down().iter().copied()));
        prop_assert_eq!(bits(seg.up().iter().copied()), bits(mono.up().iter().copied()));
        prop_assert_eq!(bits(seg.rssi_dbm().iter().copied()), bits(mono.rssi_dbm().iter().copied()));
        prop_assert_eq!(seg.time_bin().to_vec(), mono.time_bin().to_vec());
        prop_assert_eq!(seg.month().to_vec(), mono.month().to_vec());
        prop_assert_eq!(seg.access_class().to_vec(), mono.access_class().to_vec());
        prop_assert_eq!(seg.wifi_band().to_vec(), mono.wifi_band().to_vec());
        prop_assert_eq!(seg.memory_class().to_vec(), mono.memory_class().to_vec());

        // Memoized selections compose to the same global row sets.
        for platform in Platform::all() {
            let s: Vec<usize> = seg.platform_sel(platform).iter().collect();
            let m: Vec<usize> = mono.platform_sel(platform).iter().collect();
            prop_assert_eq!(s, m);
        }
        let native: Vec<usize> = seg.native_sel().iter().collect();
        let mono_native: Vec<usize> = mono.native_sel().iter().collect();
        prop_assert_eq!(native, mono_native);

        // The canonical frame concatenates byte-identically.
        let a = st_dataframe::csv::to_csv(&seg.to_frame()).expect("segmented frame");
        let b = st_dataframe::csv::to_csv(&mono.to_frame()).expect("monolithic frame");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn seal_boundaries_depend_only_on_the_seal_threshold(
        stream in prop::collection::vec(measurement_strategy(), 0..300),
        plan_a in prop::collection::vec(chunk_size_strategy(), 1..4),
        plan_b in prop::collection::vec(chunk_size_strategy(), 1..4),
        seal_rows in prop::sample::select(vec![1usize, 7, 64, 100]),
    ) {
        let a = ingest(&stream, &plan_a, seal_rows);
        let b = ingest(&stream, &plan_b, seal_rows);
        prop_assert_eq!(a.num_segments(), b.num_segments());
        for (x, y) in a.segments().iter().zip(b.segments()) {
            prop_assert_eq!(x.len(), y.len());
            prop_assert_eq!(x.id(), y.id());
        }
        // Every non-final segment holds exactly seal_rows rows, and the
        // count is the pure function ceil(accepted / seal_rows).
        let accepted = a.len();
        let expect = (accepted.div_ceil(seal_rows)).max(1);
        prop_assert_eq!(a.num_segments(), expect);
        for s in &a.segments()[..a.num_segments() - 1] {
            prop_assert_eq!(s.len(), seal_rows);
        }
    }

    #[test]
    fn assigned_columns_and_cap_counts_match_for_any_chunking(
        stream in prop::collection::vec(measurement_strategy(), 1..300),
        plan in prop::collection::vec(chunk_size_strategy(), 1..4),
        seal_rows in prop::sample::select(vec![1usize, 16, 63, 65, 100]),
    ) {
        let catalog =
            PlanCatalog::new("prop-ISP", &[(50.0, 5.0), (200.0, 10.0), (500.0, 20.0)]);
        let (mono, _) = monolithic(&stream);
        let seg = ingest(&stream, &plan, seal_rows);
        let n = mono.len();

        // A synthetic row-local scatter (what a BST fit produces): the
        // same global columns go to both stores.
        let tiers: Vec<Option<usize>> =
            (0..n).map(|i| (i % 4 != 3).then_some(1 + i % 3)).collect();
        let caps: Vec<i32> = (0..n).map(|i| if i % 4 == 3 { -1 } else { (i % 3) as i32 }).collect();
        mono.set_assignments(tiers.clone(), caps.clone(), &catalog).expect("first scatter");
        seg.set_assignments(tiers, caps, &catalog).expect("first scatter");

        prop_assert_eq!(seg.assigned_tier().to_vec(), mono.assigned().tier.clone());
        prop_assert_eq!(seg.group_idx().to_vec(), mono.assigned().group_idx.clone());
        prop_assert_eq!(seg.upload_cap_idx().to_vec(), mono.assigned().upload_cap_idx.clone());
        prop_assert_eq!(
            bits(seg.normalized_down().iter().copied()),
            bits(mono.assigned().normalized_down.iter().copied())
        );
        prop_assert_eq!(
            bits(seg.plan_down_col().iter().copied()),
            bits(mono.assigned().plan_down.iter().copied())
        );

        // Cap counts over the identity and per-platform selections.
        let all = seg.from_pred(|_| true);
        prop_assert_eq!(seg.cap_counts(&all), mono.cap_counts(&Selection::all(n)));
        for platform in Platform::all() {
            prop_assert_eq!(
                seg.cap_counts(&seg.platform_sel(platform)),
                mono.cap_counts(mono.platform_sel(platform))
            );
        }
        for gi in 0..seg.n_groups() {
            let s: Vec<usize> = seg.group_sel(gi).iter().collect();
            let m: Vec<usize> = mono.assigned().group_sels[gi].iter().collect();
            prop_assert_eq!(s, m);
        }
    }
}

/// Deterministic EM_BLOCK straddle: a stream long enough that 512-row
/// blocks split across segments, sealed at sizes around the block edge.
#[test]
fn em_block_straddle_matches_batch() {
    let stream: Vec<Measurement> = (0..1300u64)
        .map(|id| Measurement {
            id,
            user_id: id % 31,
            platform: if id % 2 == 0 { Platform::AndroidApp } else { Platform::Web },
            city: 0,
            day: (id % 365) as u16,
            hour: (id % 24) as u8,
            down_mbps: 5.0 + (id % 97) as f64,
            up_mbps: 1.0 + (id % 13) as f64,
            rtt_ms: 8.0 + (id % 50) as f64,
            loaded_rtt_ms: 12.0 + (id % 50) as f64,
            access: Access::Wifi {
                band: if id % 3 == 0 { Band::G2_4 } else { Band::G5 },
                rssi_dbm: -45.0 - (id % 30) as f64,
            },
            kernel_memory_gb: Some(2.0 + (id % 6) as f64),
            truth_tier: Some(1 + (id % 3) as usize),
        })
        .collect();
    let (mono, report) = monolithic(&stream);
    for (chunk, seal) in [(511, 513), (513, 511), (1, 512), (512, 64)] {
        let seg = ingest(&stream, &[chunk], seal);
        assert_eq!(seg.report(), &report);
        assert_eq!(seg.id().to_vec(), mono.id().to_vec(), "chunk {chunk} seal {seal}");
        assert_eq!(
            bits(seg.rssi_dbm().iter().copied()),
            bits(mono.rssi_dbm().iter().copied()),
            "derived columns diverged at chunk {chunk} seal {seal}"
        );
        let a = st_dataframe::csv::to_csv(&seg.to_frame()).expect("segmented frame");
        let b = st_dataframe::csv::to_csv(&mono.to_frame()).expect("monolithic frame");
        assert_eq!(a, b, "chunk {chunk} seal {seal}");
    }
}
