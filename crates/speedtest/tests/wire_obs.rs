//! Integration tests for the wire-layer instrumentation (DESIGN.md §13):
//! per-connection byte, retry, and failure counters must match the
//! server's ground truth, including under injected failures.

use st_obs::Registry;
use st_speedtest::wire::{
    measure_download_observed, measure_download_with, measure_upload_observed, ShapedServer,
    WireOptions,
};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

const CHUNK: usize = 16 * 1024;

fn counter(reg: &Registry, key: &str) -> u64 {
    reg.snapshot().deterministic.counters.get(key).copied().unwrap_or(0)
}

#[test]
fn byte_counters_match_a_fixed_size_serve_exactly() {
    // A one-shot server that serves exactly 5 chunks and closes: the
    // client's byte counter must equal the served size to the byte.
    const SERVED: usize = 5 * CHUNK;
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut cmd = [0u8; 1];
        s.read_exact(&mut cmd).unwrap();
        s.write_all(&[0x5au8; SERVED]).unwrap();
        // Flush-then-FIN on loopback: the client sees all bytes then EOF.
    });

    let reg = Registry::new();
    let res = measure_download_observed(
        addr,
        1,
        Duration::from_millis(2000),
        Duration::from_millis(100),
        &WireOptions::default(),
        &reg,
    )
    .unwrap();
    server.join().unwrap();

    assert_eq!(res.connections, 1);
    assert_eq!(res.connections_failed, 0);
    assert_eq!(counter(&reg, "wire.bytes{dir=down}"), SERVED as u64);
    assert_eq!(counter(&reg, "wire.connections_ok{dir=down}"), 1);
    assert_eq!(counter(&reg, "wire.connections_failed{dir=down}"), 0);
    assert_eq!(counter(&reg, "wire.connect_retries{dir=down}"), 0);
    let h = &reg.snapshot().deterministic.histograms["wire.connection_bytes{dir=down}"];
    assert_eq!(h.count, 1);
    assert_eq!(h.min, SERVED as f64);
    assert_eq!(h.max, SERVED as f64);
}

#[test]
fn injected_partial_failures_are_counted_per_connection() {
    // One connection is served a real stream, two are closed on accept:
    // they read EOF with zero bytes moved, so the registry must show one
    // survivor, two failures, and two zero-data detections.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let server = thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let feeder = thread::spawn(move || {
            let mut cmd = [0u8; 1];
            if s.read_exact(&mut cmd).is_err() {
                return;
            }
            let payload = [0x5au8; CHUNK];
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(900) {
                if s.write_all(&payload).is_err() {
                    break;
                }
            }
        });
        for _ in 0..2 {
            if let Ok((s2, _)) = listener.accept() {
                drop(s2); // injected failure: close without serving
            }
        }
        feeder.join().unwrap();
    });

    let reg = Registry::new();
    let res = measure_download_observed(
        addr,
        3,
        Duration::from_millis(600),
        Duration::from_millis(150),
        &WireOptions::for_duration(Duration::from_millis(600)),
        &reg,
    )
    .unwrap();
    server.join().unwrap();

    assert_eq!((res.connections, res.connections_failed), (1, 2), "{res:?}");
    assert_eq!(counter(&reg, "wire.connections_ok{dir=down}"), 1);
    assert_eq!(counter(&reg, "wire.connections_failed{dir=down}"), 2);
    assert_eq!(counter(&reg, "wire.zero_data_connections{dir=down}"), 2);
    assert!(counter(&reg, "wire.bytes{dir=down}") > 0, "survivor moved no data");
    // Every connection (including the failed ones) lands one observation
    // in the per-connection byte histogram.
    let h = &reg.snapshot().deterministic.histograms["wire.connection_bytes{dir=down}"];
    assert_eq!(h.count, 3);
    assert_eq!(h.min, 0.0, "failed connections observed zero bytes");
}

#[test]
fn retry_counters_match_the_configured_attempts() {
    // A dead port: every connection burns its full retry budget, so
    // retries = (attempts - 1) × connections, with one backoff sleep
    // recorded per retry.
    let addr = {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let opts = WireOptions {
        connect_attempts: 3,
        connect_backoff: Duration::from_millis(10),
        deadline: Duration::from_secs(5),
        ..WireOptions::default()
    };
    let reg = Registry::new();
    let res = measure_download_observed(
        addr,
        2,
        Duration::from_millis(300),
        Duration::from_millis(100),
        &opts,
        &reg,
    );
    assert!(res.is_err(), "dead port produced {res:?}");

    assert_eq!(counter(&reg, "wire.connect_retries{dir=down}"), 4, "2 conns × 2 retries");
    assert_eq!(counter(&reg, "wire.connections_ok{dir=down}"), 0);
    assert_eq!(counter(&reg, "wire.connections_failed{dir=down}"), 2);
    let h = &reg.snapshot().deterministic.histograms["wire.backoff_sleep_s{dir=down}"];
    assert_eq!(h.count, 4, "one backoff sleep per retry");
    assert!(h.min >= 0.01 && h.max <= 1.6, "sleeps within configured backoff range: {h:?}");
}

#[test]
fn shaped_server_counters_agree_with_the_reported_result() {
    // Against the real ShapedServer, the byte counter must reproduce the
    // WireResult's whole-duration mean exactly (same atomic underneath),
    // for both directions under their dir labels.
    let server = ShapedServer::start(60.0, 10.0).unwrap();
    let reg = Registry::new();
    let duration = Duration::from_millis(800);
    let down = measure_download_observed(
        server.addr(),
        2,
        duration,
        Duration::from_millis(200),
        &WireOptions::for_duration(duration),
        &reg,
    )
    .unwrap();
    let up = measure_upload_observed(
        server.addr(),
        2,
        duration,
        Duration::from_millis(200),
        &WireOptions::for_duration(duration),
        &reg,
    )
    .unwrap();

    for (dir, res) in [("down", &down), ("up", &up)] {
        let bytes = counter(&reg, &format!("wire.bytes{{dir={dir}}}"));
        let implied_mbps = bytes as f64 * 8.0 / 1e6 / duration.as_secs_f64();
        assert!(
            (implied_mbps - res.mean_all_mbps).abs() < 1e-6,
            "{dir}: counter implies {implied_mbps} Mbps, result says {}",
            res.mean_all_mbps
        );
        assert_eq!(counter(&reg, &format!("wire.connections_ok{{dir={dir}}}")), 2);
        assert_eq!(counter(&reg, &format!("wire.connections_failed{{dir={dir}}}")), 0);
    }
}

#[test]
fn plain_entry_points_record_nothing() {
    // The un-observed API must stay metric-free (disabled registry all
    // the way down) and keep working.
    let server = ShapedServer::start(40.0, 10.0).unwrap();
    let res = measure_download_with(
        server.addr(),
        1,
        Duration::from_millis(400),
        Duration::from_millis(100),
        &WireOptions::default(),
    )
    .unwrap();
    assert!(res.mean_all_mbps > 0.0);
}
