//! Property-based tests for the BST methodology's invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use st_bst::{BstConfig, BstModel};
use st_speedtest::PlanCatalog;

fn isp_a() -> PlanCatalog {
    PlanCatalog::new(
        "ISP-A",
        &[(25.0, 5.0), (100.0, 5.0), (200.0, 5.0), (400.0, 10.0), (800.0, 15.0), (1200.0, 35.0)],
    )
}

/// Strategy: a plausible measurement sample — per-point tier with
/// multiplicative degradation on the download and mild noise on the
/// upload, plus a few total-outlier points.
fn sample_strategy() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec(
        (
            0usize..6,                  // tier index
            0.1f64..1.05,               // download degradation factor
            0.9f64..1.1,                // upload noise factor
            prop::bool::weighted(0.05), // total outlier?
        ),
        40..200,
    )
    .prop_map(|rows| {
        let cat = isp_a();
        let mut down = Vec::with_capacity(rows.len());
        let mut up = Vec::with_capacity(rows.len());
        for (tier_idx, deg, unoise, outlier) in rows {
            if outlier {
                down.push(3.0);
                up.push(0.7);
            } else {
                let plan = cat.plan(tier_idx + 1).expect("tier in catalog");
                down.push((plan.down.0 * deg).max(0.5));
                up.push((plan.up.0 * unoise).max(0.2));
            }
        }
        (down, up)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignments_always_reference_catalog_tiers((down, up) in sample_strategy(), seed in 0u64..100) {
        let cat = isp_a();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(model) = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut rng) {
            prop_assert_eq!(model.assignments.len(), down.len());
            for a in &model.assignments {
                if let Some(t) = a.tier {
                    prop_assert!(cat.plan(t).is_some(), "tier {t} not in catalog");
                    // The assigned tier's upload cap matches the stage-1 cap.
                    prop_assert_eq!(Some(cat.plan(t).unwrap().up), a.upload_cap);
                }
                if let Some(cap) = a.upload_cap {
                    prop_assert!(cat.upload_caps().contains(&cap));
                }
            }
            let cov = model.coverage();
            prop_assert!((0.0..=1.0).contains(&cov));
        }
    }

    #[test]
    fn fit_is_deterministic_in_seed((down, up) in sample_strategy(), seed in 0u64..50) {
        let cat = isp_a();
        let fit = || {
            let mut rng = StdRng::seed_from_u64(seed);
            BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut rng)
                .map(|m| m.tiers())
        };
        match (fit(), fit()) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "determinism violated: one fit failed"),
        }
    }

    #[test]
    fn assign_agrees_with_upload_group_semantics(
        (down, up) in sample_strategy(),
        probe_down in 1.0f64..1300.0,
        probe_up in 0.5f64..45.0,
    ) {
        let cat = isp_a();
        let mut rng = StdRng::seed_from_u64(3);
        if let Ok(model) = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut rng) {
            let a = model.assign(probe_down, probe_up);
            if let (Some(cap), Some(t)) = (a.upload_cap, a.tier) {
                // The tier must belong to the cap's group.
                let group_tiers: Vec<usize> =
                    cat.plans_with_upload(cap).iter().map(|p| p.tier).collect();
                prop_assert!(group_tiers.contains(&t), "tier {t} not in group of {cap:?}");
            }
        }
    }

    #[test]
    fn upload_clusters_partition_assigned_points((down, up) in sample_strategy()) {
        let cat = isp_a();
        let mut rng = StdRng::seed_from_u64(9);
        if let Ok(model) = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut rng) {
            let total_members: usize = cat
                .upload_caps()
                .iter()
                .map(|&c| model.uploads.members_of(c).len())
                .sum();
            let unassigned = model
                .assignments
                .iter()
                .filter(|a| a.upload_cap.is_none())
                .count();
            prop_assert_eq!(total_members + unassigned, down.len());
        }
    }
}
