//! Bootstrap stability of BST assignments.
//!
//! The paper checks BST's *self*-consistency across a user's repeated
//! tests (§5.2, α). This module checks the complementary question a
//! production deployment must answer: how sensitive are the assignments
//! to the *sample* the model was fit on? We refit on bootstrap resamples
//! and measure how often each original measurement keeps its assignment
//! — low agreement flags a campaign too small or too noisy to trust.

use crate::assign::BstModel;
use crate::BstConfig;
use rand::Rng;
use st_speedtest::PlanCatalog;
use st_stats::StatsError;

/// Result of a stability analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// Mean per-measurement agreement with the reference assignment
    /// across resamples (1.0 = every refit agrees everywhere).
    pub mean_agreement: f64,
    /// Fraction of measurements whose assignment agreed in *every*
    /// resample.
    pub always_stable: f64,
    /// Resamples performed.
    pub resamples: usize,
}

/// Fit a reference model on `(down, up)`, then refit on `resamples`
/// bootstrap resamples and score per-measurement tier agreement against
/// the reference (measurements are re-classified through each refit
/// model's `assign`).
pub fn assignment_stability<R: Rng + ?Sized>(
    down: &[f64],
    up: &[f64],
    catalog: &PlanCatalog,
    cfg: &BstConfig,
    resamples: usize,
    rng: &mut R,
) -> Result<StabilityReport, StatsError> {
    assert_eq!(down.len(), up.len(), "parallel down/up samples required");
    assert!(resamples >= 2, "need at least two resamples");
    if down.is_empty() {
        return Err(StatsError::EmptyInput);
    }

    let reference = BstModel::fit(down, up, catalog, cfg, rng)?;
    let ref_tiers = reference.tiers();
    let n = down.len();

    let mut agree_counts = vec![0usize; n];
    let mut done = 0usize;
    for _ in 0..resamples {
        let mut rd = Vec::with_capacity(n);
        let mut ru = Vec::with_capacity(n);
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            rd.push(down[i]);
            ru.push(up[i]);
        }
        let Ok(model) = BstModel::fit(&rd, &ru, catalog, cfg, rng) else {
            continue; // degenerate resample; skip rather than fail the report
        };
        done += 1;
        for i in 0..n {
            if model.assign(down[i], up[i]).tier == ref_tiers[i] {
                agree_counts[i] += 1;
            }
        }
    }
    if done == 0 {
        return Err(StatsError::Diverged { iteration: 0 });
    }

    let mean_agreement =
        agree_counts.iter().map(|&c| c as f64 / done as f64).sum::<f64>() / n as f64;
    let always_stable = agree_counts.iter().filter(|&&c| c == done).count() as f64 / n as f64;
    Ok(StabilityReport { mean_agreement, always_stable, resamples: done })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    fn sample(r: &mut StdRng, n_per: usize, down_sd_frac: f64) -> (Vec<f64>, Vec<f64>) {
        let spec: [(f64, f64); 4] = [(110.0, 5.4), (430.0, 10.7), (700.0, 16.0), (950.0, 37.5)];
        let g = |r: &mut StdRng, mu: f64, sd: f64| {
            let u1: f64 = r.gen::<f64>().max(1e-12);
            let u2: f64 = r.gen();
            mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let (mut down, mut up) = (Vec::new(), Vec::new());
        for &(dmu, umu) in &spec {
            for _ in 0..n_per {
                down.push(g(r, dmu, dmu * down_sd_frac).max(1.0));
                up.push(g(r, umu, umu * 0.05).max(0.3));
            }
        }
        (down, up)
    }

    #[test]
    fn clean_campaigns_are_highly_stable() {
        let mut r = StdRng::seed_from_u64(83);
        let (down, up) = sample(&mut r, 250, 0.05);
        let rep =
            assignment_stability(&down, &up, &isp_a(), &BstConfig::default(), 5, &mut r).unwrap();
        assert!(rep.mean_agreement > 0.95, "{rep:?}");
        assert!(rep.always_stable > 0.85, "{rep:?}");
        assert_eq!(rep.resamples, 5);
    }

    #[test]
    fn noisier_campaigns_are_less_stable() {
        let mut r = StdRng::seed_from_u64(89);
        let (down_c, up_c) = sample(&mut r, 120, 0.05);
        let clean =
            assignment_stability(&down_c, &up_c, &isp_a(), &BstConfig::default(), 4, &mut r)
                .unwrap();
        let (down_n, up_n) = sample(&mut r, 120, 0.6);
        let noisy =
            assignment_stability(&down_n, &up_n, &isp_a(), &BstConfig::default(), 4, &mut r)
                .unwrap();
        assert!(
            noisy.mean_agreement <= clean.mean_agreement + 1e-9,
            "noisy {noisy:?} vs clean {clean:?}"
        );
    }

    #[test]
    fn report_fields_are_probabilities() {
        let mut r = StdRng::seed_from_u64(97);
        let (down, up) = sample(&mut r, 60, 0.2);
        let rep =
            assignment_stability(&down, &up, &isp_a(), &BstConfig::default(), 3, &mut r).unwrap();
        assert!((0.0..=1.0).contains(&rep.mean_agreement));
        assert!((0.0..=1.0).contains(&rep.always_stable));
        assert!(rep.always_stable <= rep.mean_agreement + 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least two resamples")]
    fn too_few_resamples_rejected() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = assignment_stability(&[1.0], &[1.0], &isp_a(), &BstConfig::default(), 1, &mut r);
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(assignment_stability(&[], &[], &isp_a(), &BstConfig::default(), 3, &mut r).is_err());
    }
}
