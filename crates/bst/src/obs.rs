//! Observability for fitted BST models (DESIGN.md §13).
//!
//! A fitted [`BstModel`] already carries everything the metrics layer
//! wants to know — KDE peak counts, per-stage EM diagnostics, member
//! counts per upload cap — so instrumentation is a pure *post-fit read*:
//! [`observe_model`] walks the model and records into an
//! [`st_obs::Registry`] without touching the fitting path. Every metric
//! here is a function of the fitted model alone, which puts the whole
//! set in the deterministic class.

use crate::{BstConfig, BstModel};
use st_obs::Registry;

/// Record a fitted model's diagnostics under `labels` (typically
/// `city` + `campaign`). Metric names:
///
/// * `bst.stage1.kde_peaks` / `bst.stage1.components` — gauges
/// * `bst.stage1.em_iterations` — counter; `bst.stage1.ll` — series
///   (the stage-1 log-likelihood trajectory)
/// * `bst.stage1.cap_members` — counter per `cap` label (cross-checks
///   against table 3's member counts)
/// * `bst.stage2.groups`, `bst.stage2.em_iterations`,
///   `bst.stage2.components` — per-group fit shape; `bst.stage2.ll`
///   series per `cap`
/// * `bst.kde_grid_evals` — counter: `kde_grid_points × (1 + groups)`,
///   one grid pass for stage 1 plus one per stage-2 group
/// * `bst.assigned` / `bst.unassigned` — tier coverage counters
pub fn observe_model(reg: &Registry, labels: &[(&str, &str)], model: &BstModel, cfg: &BstConfig) {
    if !reg.is_enabled() {
        return;
    }

    let s1 = model.uploads.gmm.fit_info();
    reg.set_gauge("bst.stage1.kde_peaks", labels, model.uploads.kde_peaks as f64);
    reg.set_gauge("bst.stage1.components", labels, model.uploads.gmm.k() as f64);
    reg.add("bst.stage1.em_iterations", labels, s1.iterations as u64);
    reg.extend_series("bst.stage1.ll", labels, &s1.trajectory);

    // Per-cap member counts, keyed the way stage 1 matched them.
    for cap in model.uploads.component_caps.iter().flatten() {
        let members = model.uploads.members_of(*cap);
        let cap_label = format!("{}", cap.0);
        let mut with_cap: Vec<(&str, &str)> = labels.to_vec();
        with_cap.push(("cap", &cap_label));
        reg.add("bst.stage1.cap_members", &with_cap, members.len() as u64);
    }

    reg.add("bst.stage2.groups", labels, model.downloads.len() as u64);
    let mut em_total = s1.iterations as u64;
    for (cap, dc) in &model.downloads {
        let s2 = dc.gmm.fit_info();
        em_total += s2.iterations as u64;
        let cap_label = format!("{}", cap.0);
        let mut with_cap: Vec<(&str, &str)> = labels.to_vec();
        with_cap.push(("cap", &cap_label));
        reg.add("bst.stage2.em_iterations", &with_cap, s2.iterations as u64);
        reg.set_gauge("bst.stage2.components", &with_cap, dc.gmm.k() as f64);
        reg.set_gauge("bst.stage2.kde_peaks", &with_cap, dc.kde_peaks as f64);
        reg.extend_series("bst.stage2.ll", &with_cap, &s2.trajectory);
    }
    reg.add("bst.em_iterations_total", labels, em_total);

    // One KDE grid pass for stage 1 plus one per fitted stage-2 group.
    let grid_evals = cfg.kde_grid_points as u64 * (1 + model.downloads.len() as u64);
    reg.add("bst.kde_grid_evals", labels, grid_evals);

    let assigned = model.assignments.iter().filter(|a| a.tier.is_some()).count() as u64;
    reg.add("bst.assigned", labels, assigned);
    reg.add("bst.unassigned", labels, model.assignments.len() as u64 - assigned);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use st_speedtest::PlanCatalog;

    fn sample(seed: u64) -> (Vec<f64>, Vec<f64>, PlanCatalog) {
        let cat = PlanCatalog::new("ISP-T", &[(100.0, 5.0), (400.0, 10.0), (800.0, 15.0)]);
        let mut r = StdRng::seed_from_u64(seed);
        let mut gaussian = move |mu: f64, sd: f64| {
            let u1: f64 = r.gen::<f64>().max(1e-12);
            let u2: f64 = r.gen();
            mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let (mut down, mut up) = (Vec::new(), Vec::new());
        for &(dmu, umu, n) in &[(110.0, 5.3, 250), (430.0, 10.5, 250), (780.0, 16.0, 250)] {
            for _ in 0..n {
                down.push(gaussian(dmu, dmu * 0.05).max(1.0));
                up.push(gaussian(umu, 0.5).max(0.3));
            }
        }
        (down, up, cat)
    }

    #[test]
    fn observed_counts_match_the_model() {
        let (down, up, cat) = sample(17);
        let cfg = BstConfig::default();
        let mut r = StdRng::seed_from_u64(99);
        let model = BstModel::fit(&down, &up, &cat, &cfg, &mut r).unwrap();

        let reg = Registry::new();
        observe_model(&reg, &[("city", "t")], &model, &cfg);
        let det = reg.snapshot().deterministic;

        let assigned = det.counters["bst.assigned{city=t}"];
        let unassigned = det.counters["bst.unassigned{city=t}"];
        assert_eq!(assigned + unassigned, model.assignments.len() as u64);
        assert_eq!(det.counters["bst.stage2.groups{city=t}"], model.downloads.len() as u64);
        assert_eq!(
            det.counters["bst.kde_grid_evals{city=t}"],
            cfg.kde_grid_points as u64 * (1 + model.downloads.len() as u64)
        );
        // Cap-member counters sum to the total stage-1 matched population.
        let matched: u64 = det
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("bst.stage1.cap_members{"))
            .map(|(_, &v)| v)
            .sum();
        let expect: usize = model
            .uploads
            .component_caps
            .iter()
            .flatten()
            .map(|&c| model.uploads.members_of(c).len())
            .sum();
        assert_eq!(matched as usize, expect);
        // The trajectory series carries the stage-1 fit verbatim.
        assert_eq!(det.series["bst.stage1.ll{city=t}"], model.uploads.gmm.fit_info().trajectory);
    }

    #[test]
    fn disabled_registry_short_circuits() {
        let (down, up, cat) = sample(18);
        let cfg = BstConfig::default();
        let mut r = StdRng::seed_from_u64(100);
        let model = BstModel::fit(&down, &up, &cat, &cfg, &mut r).unwrap();
        let reg = Registry::disabled();
        observe_model(&reg, &[], &model, &cfg);
        assert!(reg.snapshot().deterministic.counters.is_empty());
    }
}
