//! Stage 2: per-upload-group download clustering.
//!
//! Within one upload cluster the candidate plans are the few that share
//! that upload cap (for ISP-A's 5 Mbps group: 25/100/200 Mbps). Downloads
//! are noisy — WiFi and device effects spread each plan's mass downward —
//! so the KDE frequently finds *more* components than plans (the paper
//! associates up to 10 download clusters per tier, §5.1). Each recovered
//! component is then mapped to the plan whose advertised download is
//! nearest **at or above** the component mean when possible: a cluster of
//! WiFi-throttled gigabit tests at 300 Mbps belongs to the 1200 Mbps plan
//! of its upload group, not to a 200 Mbps plan from another group.

use crate::BstConfig;
use rand::Rng;
use st_speedtest::Plan;
use st_stats::{Bandwidth, GaussianMixture, GmmConfig, KernelDensity, StatsError};

/// A fitted stage-2 clustering for one upload group.
#[derive(Debug, Clone)]
pub struct DownloadClustering {
    /// The fitted mixture over download speeds in this group.
    pub gmm: GaussianMixture,
    /// For each component: the matched plan tier (1-based).
    pub component_tiers: Vec<usize>,
    /// Per-measurement component index (parallel to the group's sample).
    pub assignments: Vec<usize>,
    /// Number of KDE peaks detected.
    pub kde_peaks: usize,
}

impl DownloadClustering {
    /// The assigned tier for the group's `i`-th measurement.
    pub fn tier_of(&self, i: usize) -> usize {
        self.component_tiers[self.assignments[i]]
    }

    /// Component means, ascending (the values reported in Table 4).
    pub fn component_means(&self) -> Vec<f64> {
        self.gmm.means()
    }
}

/// Map a download-component mean onto one of the group's plans.
///
/// Preference order: the cheapest plan whose advertised download is at or
/// above `mean / headroom`; if the mean exceeds every plan, the top plan
/// takes it. Headroom 1.2 covers ISP over-provisioning: the paper's own
/// recovered clusters sit up to ~16% above plan (115.65 on the 100 Mbps
/// plan, 231.69 on the 200 Mbps plan, §4.3/§5.1).
fn match_plan(mean: f64, plans: &[&Plan]) -> usize {
    const HEADROOM: f64 = 1.2;
    plans
        .iter()
        .find(|p| p.down.0 * HEADROOM >= mean)
        .or_else(|| plans.last())
        .map(|p| p.tier)
        .expect("group has at least one plan")
}

/// Cluster the download speeds of one upload group and map components to
/// the group's plans. `plans` must be the catalog plans sharing the
/// group's upload cap, ascending by download.
pub fn cluster_downloads<R: Rng + ?Sized>(
    downloads: &[f64],
    plans: &[&Plan],
    cfg: &BstConfig,
    rng: &mut R,
) -> Result<DownloadClustering, StatsError> {
    assert!(!plans.is_empty(), "a tier group has at least one plan");

    let kde = KernelDensity::fit(downloads, Bandwidth::ScaledSilverman(cfg.kde_bandwidth_scale))?;
    let peaks = kde.find_peaks(cfg.kde_grid_points, cfg.kde_min_prominence)?;
    let kde_peaks = peaks.len();

    // EM is seeded at the group's plan speeds; KDE peaks away from every
    // plan seed extra components that absorb the WiFi/device degradation
    // modes (up to the configured maximum).
    let mut init_means: Vec<f64> = plans.iter().map(|p| p.down.0).collect();
    for p in &peaks {
        let near_plan = init_means.iter().any(|&m| (p.x - m).abs() <= m * 0.25);
        if !near_plan && init_means.len() < cfg.max_download_clusters {
            init_means.push(p.x);
        }
    }
    init_means.truncate(downloads.len());
    let gmm_cfg = GmmConfig { max_iter: cfg.max_em_iter, ..Default::default() };
    let gmm = match GaussianMixture::fit_with_means(downloads, &init_means, gmm_cfg) {
        Ok(g) => g,
        Err(_) => {
            let k = plans.len().min(downloads.len()).max(1);
            GaussianMixture::fit(
                downloads,
                GmmConfig { k, max_iter: cfg.max_em_iter, ..Default::default() },
                rng,
            )?
        }
    };

    let component_tiers: Vec<usize> =
        gmm.components().iter().map(|c| match_plan(c.mean, plans)).collect();
    let assignments = gmm.predict_batch(downloads);

    Ok(DownloadClustering { gmm, component_tiers, assignments, kde_peaks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use st_netsim::Mbps;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(37)
    }

    fn plans_5mbps_group() -> Vec<Plan> {
        vec![
            Plan { tier: 1, down: Mbps(25.0), up: Mbps(5.0) },
            Plan { tier: 2, down: Mbps(100.0), up: Mbps(5.0) },
            Plan { tier: 3, down: Mbps(200.0), up: Mbps(5.0) },
        ]
    }

    fn gaussian(r: &mut StdRng, mu: f64, sd: f64) -> f64 {
        let u1: f64 = r.gen::<f64>().max(1e-12);
        let u2: f64 = r.gen();
        mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    #[test]
    fn wired_style_sample_maps_cleanly() {
        // Like the MBA Tier 1-3 cluster (§4.3): two clear components at
        // ~110 and ~230 (over-provisioned 100 and 200 plans).
        let mut r = rng();
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..600 {
            data.push(gaussian(&mut r, 110.0, 8.0));
            truth.push(2usize);
        }
        for _ in 0..400 {
            data.push(gaussian(&mut r, 231.0, 12.0));
            truth.push(3usize);
        }
        let plans = plans_5mbps_group();
        let refs: Vec<&Plan> = plans.iter().collect();
        let dc = cluster_downloads(&data, &refs, &BstConfig::default(), &mut r).unwrap();
        let correct = (0..data.len()).filter(|&i| dc.tier_of(i) == truth[i]).count() as f64;
        assert!(correct / data.len() as f64 > 0.99, "accuracy {}", correct / data.len() as f64);
    }

    #[test]
    fn overprovisioned_cluster_still_matches_its_plan() {
        // A cluster at 110 Mbps (10% above the 100 plan) must map to
        // tier 2, not be pushed up to tier 3.
        let mut r = rng();
        let data: Vec<f64> = (0..500).map(|_| gaussian(&mut r, 110.0, 6.0)).collect();
        let plans = plans_5mbps_group();
        let refs: Vec<&Plan> = plans.iter().collect();
        let dc = cluster_downloads(&data, &refs, &BstConfig::default(), &mut r).unwrap();
        let tier2 = (0..data.len()).filter(|&i| dc.tier_of(i) == 2).count();
        assert!(tier2 as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn wifi_degraded_modes_fold_into_their_plan() {
        // One plan only (like Tier 6): degraded WiFi modes at 100/300/900
        // must all map to the single available tier.
        let mut r = rng();
        let mut data = Vec::new();
        for (mu, sd, n) in [(100.0, 25.0, 200), (300.0, 60.0, 250), (900.0, 60.0, 300)] {
            for _ in 0..n {
                data.push(gaussian(&mut r, mu, sd).max(1.0));
            }
        }
        let plan = Plan { tier: 6, down: Mbps(1200.0), up: Mbps(35.0) };
        let dc = cluster_downloads(&data, &[&plan], &BstConfig::default(), &mut r).unwrap();
        assert!(dc.component_tiers.iter().all(|&t| t == 6));
        assert!(dc.gmm.k() >= 2, "degradation modes should appear as components");
    }

    #[test]
    fn match_plan_prefers_plan_at_or_above_mean() {
        let plans = plans_5mbps_group();
        let refs: Vec<&Plan> = plans.iter().collect();
        assert_eq!(match_plan(8.0, &refs), 1);
        assert_eq!(match_plan(27.0, &refs), 1); // within 20% headroom of 25
        assert_eq!(match_plan(57.0, &refs), 2); // degraded 100-plan tests
        assert_eq!(match_plan(115.0, &refs), 2);
        assert_eq!(match_plan(214.0, &refs), 3);
        assert_eq!(match_plan(500.0, &refs), 3); // above everything → top
    }

    #[test]
    fn component_means_are_sorted() {
        let mut r = rng();
        let data: Vec<f64> =
            (0..300).map(|i| if i % 2 == 0 { 20.0 } else { 90.0 } + r.gen::<f64>()).collect();
        let plans = plans_5mbps_group();
        let refs: Vec<&Plan> = plans.iter().collect();
        let dc = cluster_downloads(&data, &refs, &BstConfig::default(), &mut r).unwrap();
        let means = dc.component_means();
        for w in means.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn component_count_is_bounded() {
        let mut r = rng();
        // Scatter across many modes; must not exceed max_download_clusters.
        let data: Vec<f64> =
            (0..2000).map(|i| 10.0 + (i % 17) as f64 * 60.0 + gaussian(&mut r, 0.0, 4.0)).collect();
        let plan = Plan { tier: 6, down: Mbps(1200.0), up: Mbps(35.0) };
        let cfg = BstConfig::default();
        let dc = cluster_downloads(&data, &[&plan], &cfg, &mut r).unwrap();
        assert!(dc.gmm.k() <= cfg.max_download_clusters);
    }

    #[test]
    #[should_panic(expected = "at least one plan")]
    fn empty_plan_group_panics() {
        let mut r = rng();
        let _ = cluster_downloads(&[1.0, 2.0], &[], &BstConfig::default(), &mut r);
    }

    #[test]
    fn empty_downloads_is_an_error() {
        let mut r = rng();
        let plans = plans_5mbps_group();
        let refs: Vec<&Plan> = plans.iter().collect();
        assert!(cluster_downloads(&[], &refs, &BstConfig::default(), &mut r).is_err());
    }
}
