//! Assignment-consistency analysis (paper §5.2).
//!
//! Lacking ground truth for crowdsourced data, the paper checks that BST is
//! at least *self-consistent*: a user's many tests in one month should land
//! in one tier. For user `u` in month `m`, `α(u, m)` is the largest share
//! of that user-month's tests assigned to a single tier; a distribution of
//! α skewed toward 1 (median 1 in the paper, Fig. 8) indicates consistent
//! assignment.

use st_stats::Ecdf;
use std::collections::HashMap;

/// Configuration for the α analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaConfig {
    /// Minimum tests a user must have in a month to be included
    /// (the paper uses 5).
    pub min_tests_per_month: usize,
}

impl Default for AlphaConfig {
    fn default() -> Self {
        AlphaConfig { min_tests_per_month: 5 }
    }
}

/// Compute α per user-month.
///
/// Inputs are parallel per-measurement slices: the user id, the month
/// index (0..12), and the assigned tier (None = unassigned, excluded).
/// Returns one α per qualifying user-month.
pub fn alpha_values(
    user_ids: &[u64],
    months: &[usize],
    tiers: &[Option<usize>],
    cfg: &AlphaConfig,
) -> Vec<f64> {
    assert!(
        user_ids.len() == months.len() && months.len() == tiers.len(),
        "parallel slices required"
    );
    assert!(cfg.min_tests_per_month >= 1, "min tests must be at least 1");

    // (user, month) → tier → count
    let mut table: HashMap<(u64, usize), HashMap<usize, usize>> = HashMap::new();
    for ((&u, &m), t) in user_ids.iter().zip(months).zip(tiers) {
        if let Some(t) = t {
            *table.entry((u, m)).or_default().entry(*t).or_default() += 1;
        }
    }

    let mut alphas: Vec<f64> = table
        .into_values()
        .filter_map(|tier_counts| {
            let total: usize = tier_counts.values().sum();
            if total < cfg.min_tests_per_month {
                return None;
            }
            let max = *tier_counts.values().max().expect("non-empty");
            Some(max as f64 / total as f64)
        })
        .collect();
    // Deterministic output order regardless of hash iteration.
    alphas.sort_by(|a, b| a.partial_cmp(b).expect("alphas are finite"));
    alphas
}

/// The CDF of α values, ready for plotting (the paper's Fig. 8).
pub fn consistency_cdf(
    user_ids: &[u64],
    months: &[usize],
    tiers: &[Option<usize>],
    cfg: &AlphaConfig,
) -> Option<Ecdf> {
    let alphas = alpha_values(user_ids, months, tiers, cfg);
    Ecdf::new(&alphas).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_consistent_user_scores_one() {
        let users = vec![1u64; 6];
        let months = vec![0usize; 6];
        let tiers = vec![Some(3usize); 6];
        let a = alpha_values(&users, &months, &tiers, &AlphaConfig::default());
        assert_eq!(a, vec![1.0]);
    }

    #[test]
    fn split_assignment_lowers_alpha() {
        let users = vec![1u64; 6];
        let months = vec![0usize; 6];
        let tiers = vec![Some(1), Some(1), Some(1), Some(1), Some(2), Some(2)];
        let a = alpha_values(&users, &months, &tiers, &AlphaConfig::default());
        assert_eq!(a.len(), 1);
        assert!((a[0] - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn below_threshold_user_months_are_excluded() {
        let users = vec![1, 1, 1, 2, 2];
        let months = vec![0usize; 5];
        let tiers = vec![Some(1); 5];
        let a = alpha_values(&users, &months, &tiers, &AlphaConfig::default());
        assert!(a.is_empty(), "3 and 2 tests are both under the 5-test floor");
    }

    #[test]
    fn months_partition_a_users_tests() {
        // 5 tests in Jan (consistent) + 5 in Feb (split 3/2).
        let users = vec![7u64; 10];
        let months = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let tiers = vec![
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(1),
            Some(2),
            Some(2),
            Some(2),
            Some(3),
            Some(3),
        ];
        let a = alpha_values(&users, &months, &tiers, &AlphaConfig::default());
        assert_eq!(a.len(), 2);
        assert!((a[0] - 0.6).abs() < 1e-12);
        assert_eq!(a[1], 1.0);
    }

    #[test]
    fn unassigned_tests_do_not_count() {
        let users = vec![1u64; 7];
        let months = vec![0usize; 7];
        let tiers = vec![Some(1), Some(1), Some(1), Some(1), Some(1), None, None];
        let a = alpha_values(&users, &months, &tiers, &AlphaConfig::default());
        assert_eq!(a, vec![1.0], "the 5 assigned tests qualify; Nones ignored");
    }

    #[test]
    fn cdf_construction() {
        let users: Vec<u64> = (0..50).flat_map(|u| vec![u; 5]).collect();
        let months = vec![0usize; 250];
        let tiers: Vec<Option<usize>> = (0..250).map(|i| Some(1 + (i / 5) % 2)).collect();
        let cdf = consistency_cdf(&users, &months, &tiers, &AlphaConfig::default()).unwrap();
        assert_eq!(cdf.len(), 50);
        assert_eq!(cdf.median(), 1.0);
    }

    #[test]
    fn empty_input_yields_no_cdf() {
        assert!(consistency_cdf(&[], &[], &[], &AlphaConfig::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "parallel slices")]
    fn mismatched_slices_panic() {
        let _ = alpha_values(&[1], &[0, 1], &[Some(1)], &AlphaConfig::default());
    }

    #[test]
    #[should_panic(expected = "min tests must be at least 1")]
    fn zero_threshold_rejected() {
        let _ = alpha_values(&[1], &[0], &[Some(1)], &AlphaConfig { min_tests_per_month: 0 });
    }
}
