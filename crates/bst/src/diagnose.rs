//! Measurement triage for coverage-challenge processes.
//!
//! The paper's motivation (§1) and recommendations (§8): before a speed
//! test is used to challenge an ISP's coverage claim, the *source* of the
//! under-performance must be determined —
//!
//! > "If the under-performance is attributable to issues in the access
//! > network, then the problem could be reported to the ISP ... if the
//! > under-performance is attributable to local factors, such as channel
//! > interference or poor signal quality, the user can address it
//! > directly. If the user simply purchased a lower-tier plan, then
//! > perhaps the speed test is measuring the paid-for speed."
//!
//! [`diagnose`] operationalizes that triage: given a measurement with its
//! context metadata and a fitted [`BstModel`], it classifies the test into
//! a [`Verdict`] with the contributing [`LocalFactor`]s, and says whether
//! the test constitutes valid evidence of access-network
//! under-performance.

use crate::assign::BstModel;
use st_netsim::{Band, MemoryClass};
use st_speedtest::{Access, Measurement, PlanCatalog};

/// A local condition that can explain low measured throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalFactor {
    /// Test ran over WiFi rather than a wired link.
    WifiAccess,
    /// The WiFi association used the 2.4 GHz band.
    Band24GHz,
    /// Signal strength below −70 dBm.
    WeakSignal,
    /// Signal strength in the marginal −70..−50 dBm range while the plan
    /// is fast enough for it to matter.
    MarginalSignal,
    /// Less than 2 GB of kernel memory on the measuring device.
    LowMemory,
    /// The access medium is unrecorded, so local factors cannot be ruled
    /// out (web-based tests).
    UnknownMedium,
    /// The methodology itself under-measures on this plan (single-flow
    /// NDT on a high bandwidth-delay-product path).
    SingleFlowMethodology,
}

impl LocalFactor {
    /// Human-readable description for challenge reports.
    pub fn describe(&self) -> &'static str {
        match self {
            LocalFactor::WifiAccess => "test ran over WiFi, not a wired link",
            LocalFactor::Band24GHz => "WiFi association on the crowded 2.4 GHz band",
            LocalFactor::WeakSignal => "WiFi signal below -70 dBm",
            LocalFactor::MarginalSignal => "WiFi signal in the marginal -70..-50 dBm range",
            LocalFactor::LowMemory => "device has under 2 GB of kernel memory",
            LocalFactor::UnknownMedium => "access medium unrecorded; local factors unknown",
            LocalFactor::SingleFlowMethodology => {
                "single-TCP-connection methodology under-measures fast plans"
            }
        }
    }
}

/// The triage outcome for one measurement.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The measurement is consistent with the subscribed plan — nothing
    /// to challenge.
    MeetsPlan {
        /// Measured / subscribed download ratio.
        normalized: f64,
    },
    /// Under-performance is plausibly explained by local conditions; not
    /// valid evidence against the ISP.
    LocalBottleneck {
        /// Measured / subscribed download ratio.
        normalized: f64,
        /// The conditions that can explain it, most significant first.
        factors: Vec<LocalFactor>,
    },
    /// Clean local conditions and still far below plan: credible evidence
    /// of access-network under-performance.
    AccessUnderperformance {
        /// Measured / subscribed download ratio.
        normalized: f64,
    },
    /// No subscription tier could be inferred for this measurement.
    Unattributable,
}

impl Verdict {
    /// Whether this measurement is usable as challenge evidence.
    pub fn is_challenge_evidence(&self) -> bool {
        matches!(self, Verdict::AccessUnderperformance { .. })
    }
}

/// Configuration for the triage thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagnoseConfig {
    /// Normalized download at or above this meets the plan
    /// (FCC challenge guidance treats ~80% of subscribed speed as
    /// delivering the plan).
    pub meets_plan_threshold: f64,
    /// Plans above this download rate are considered fast enough for
    /// marginal WiFi signal or single-flow methodology to bind.
    pub fast_plan_mbps: f64,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        DiagnoseConfig { meets_plan_threshold: 0.8, fast_plan_mbps: 300.0 }
    }
}

/// Triage one measurement against a fitted model and the plan catalog.
///
/// The tier is taken from the measurement's BST assignment (computed via
/// [`BstModel::assign`]); pass `known_tier` to override it when the
/// subscription is known (the paper recommends collecting it, §8).
pub fn diagnose(
    m: &Measurement,
    model: &BstModel,
    catalog: &PlanCatalog,
    known_tier: Option<usize>,
    cfg: &DiagnoseConfig,
) -> Verdict {
    let tier = known_tier.or_else(|| model.assign(m.down_mbps, m.up_mbps).tier);
    let Some(tier) = tier else {
        return Verdict::Unattributable;
    };
    let Some(plan) = catalog.plan(tier) else {
        return Verdict::Unattributable;
    };
    let normalized = m.down_mbps / plan.down.0;

    if normalized >= cfg.meets_plan_threshold {
        return Verdict::MeetsPlan { normalized };
    }

    let fast_plan = plan.down.0 >= cfg.fast_plan_mbps;
    let mut factors = Vec::new();
    match m.access {
        Access::Wifi { band, rssi_dbm } => {
            if band == Band::G2_4 {
                factors.push(LocalFactor::Band24GHz);
            }
            if rssi_dbm < -70.0 {
                factors.push(LocalFactor::WeakSignal);
            } else if rssi_dbm < -50.0 && fast_plan {
                factors.push(LocalFactor::MarginalSignal);
            }
            // WiFi per se only explains shortfall on fast plans; a 100 Mbps
            // plan is deliverable over any healthy association.
            if fast_plan || !factors.is_empty() {
                factors.push(LocalFactor::WifiAccess);
            }
        }
        Access::Ethernet => {}
        Access::Unknown => factors.push(LocalFactor::UnknownMedium),
    }
    if m.memory_class() == Some(MemoryClass::Under2G) {
        factors.push(LocalFactor::LowMemory);
    }
    if m.vendor() == st_speedtest::Vendor::MLab && fast_plan {
        factors.push(LocalFactor::SingleFlowMethodology);
    }

    if factors.is_empty() {
        Verdict::AccessUnderperformance { normalized }
    } else {
        // Most significant first: device/physics limits before generic
        // medium caveats.
        factors.sort_by_key(|f| match f {
            LocalFactor::LowMemory => 0,
            LocalFactor::WeakSignal => 1,
            LocalFactor::Band24GHz => 2,
            LocalFactor::MarginalSignal => 3,
            LocalFactor::SingleFlowMethodology => 4,
            LocalFactor::WifiAccess => 5,
            LocalFactor::UnknownMedium => 6,
        });
        factors.dedup();
        Verdict::LocalBottleneck { normalized, factors }
    }
}

/// Aggregate triage of a campaign: counts per verdict class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TriageSummary {
    /// Tests meeting their plan.
    pub meets_plan: usize,
    /// Tests explained by local factors.
    pub local_bottleneck: usize,
    /// Tests that are credible challenge evidence.
    pub access_underperformance: usize,
    /// Tests with no inferable tier.
    pub unattributable: usize,
}

impl TriageSummary {
    /// Total measurements triaged.
    pub fn total(&self) -> usize {
        self.meets_plan + self.local_bottleneck + self.access_underperformance + self.unattributable
    }
}

/// Triage a whole campaign with per-measurement tiers already assigned
/// (e.g. from the fitted model the measurements were part of).
pub fn triage_campaign(
    ms: &[Measurement],
    tiers: &[Option<usize>],
    model: &BstModel,
    catalog: &PlanCatalog,
    cfg: &DiagnoseConfig,
) -> TriageSummary {
    assert_eq!(ms.len(), tiers.len(), "parallel measurements/tiers required");
    let mut s = TriageSummary::default();
    for (m, t) in ms.iter().zip(tiers) {
        match diagnose(m, model, catalog, *t, cfg) {
            Verdict::MeetsPlan { .. } => s.meets_plan += 1,
            Verdict::LocalBottleneck { .. } => s.local_bottleneck += 1,
            Verdict::AccessUnderperformance { .. } => s.access_underperformance += 1,
            Verdict::Unattributable => s.unattributable += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BstConfig;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};
    use st_speedtest::Platform;

    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    fn fitted_model() -> (BstModel, PlanCatalog) {
        let mut r = StdRng::seed_from_u64(61);
        let spec: [(f64, f64, f64, f64, usize); 4] = [
            (110.0, 8.0, 5.4, 0.4, 300),
            (430.0, 25.0, 10.7, 0.6, 200),
            (700.0, 60.0, 16.0, 0.8, 150),
            (950.0, 80.0, 38.0, 1.5, 200),
        ];
        let (mut down, mut up) = (Vec::new(), Vec::new());
        for &(dmu, dsd, umu, usd, n) in &spec {
            for _ in 0..n {
                let g = |r: &mut StdRng, mu: f64, sd: f64| {
                    let u1: f64 = r.gen::<f64>().max(1e-12);
                    let u2: f64 = r.gen();
                    mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                down.push(g(&mut r, dmu, dsd).max(1.0));
                up.push(g(&mut r, umu, usd).max(0.3));
            }
        }
        let cat = isp_a();
        let model = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut r).unwrap();
        (model, cat)
    }

    fn measurement(down: f64, up: f64, access: Access, memory: Option<f64>) -> Measurement {
        Measurement {
            id: 0,
            user_id: 0,
            platform: Platform::AndroidApp,
            city: 0,
            day: 10,
            hour: 14,
            down_mbps: down,
            up_mbps: up,
            rtt_ms: 14.0,
            loaded_rtt_ms: 20.0,
            access,
            kernel_memory_gb: memory,
            truth_tier: None,
        }
    }

    #[test]
    fn plan_meeting_test_is_not_evidence() {
        let (model, cat) = fitted_model();
        let m = measurement(98.0, 5.2, Access::Wifi { band: Band::G5, rssi_dbm: -45.0 }, Some(8.0));
        let v = diagnose(&m, &model, &cat, None, &DiagnoseConfig::default());
        assert!(matches!(v, Verdict::MeetsPlan { normalized } if normalized > 0.9));
        assert!(!v.is_challenge_evidence());
    }

    #[test]
    fn weak_wifi_shortfall_is_a_local_bottleneck() {
        let (model, cat) = fitted_model();
        // Tier 6 subscriber measuring 150 Mbps on terrible 2.4 GHz WiFi.
        let m =
            measurement(150.0, 36.0, Access::Wifi { band: Band::G2_4, rssi_dbm: -78.0 }, Some(6.0));
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        match v {
            Verdict::LocalBottleneck { factors, normalized } => {
                assert!(normalized < 0.2);
                assert!(factors.contains(&LocalFactor::Band24GHz), "{factors:?}");
                assert!(factors.contains(&LocalFactor::WeakSignal), "{factors:?}");
                assert!(factors.contains(&LocalFactor::WifiAccess), "{factors:?}");
            }
            other => panic!("expected LocalBottleneck, got {other:?}"),
        }
    }

    #[test]
    fn clean_path_shortfall_is_challenge_evidence() {
        let (model, cat) = fitted_model();
        // Ethernet, plenty of memory, tier 6 known, only 300 Mbps measured.
        let m = measurement(300.0, 36.0, Access::Ethernet, Some(16.0));
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        assert!(
            matches!(v, Verdict::AccessUnderperformance { normalized } if normalized < 0.3),
            "{v:?}"
        );
        assert!(v.is_challenge_evidence());
    }

    #[test]
    fn good_wifi_on_slow_plan_can_still_be_evidence() {
        let (model, cat) = fitted_model();
        // 100 Mbps plan measuring 30 over healthy 5 GHz WiFi: WiFi cannot
        // explain a 100 Mbps shortfall, so this points at the access link.
        let m = measurement(30.0, 5.1, Access::Wifi { band: Band::G5, rssi_dbm: -45.0 }, Some(8.0));
        let v = diagnose(&m, &model, &cat, Some(2), &DiagnoseConfig::default());
        assert!(v.is_challenge_evidence(), "{v:?}");
    }

    #[test]
    fn marginal_wifi_on_fast_plan_is_not_evidence() {
        let (model, cat) = fitted_model();
        let m =
            measurement(350.0, 36.0, Access::Wifi { band: Band::G5, rssi_dbm: -62.0 }, Some(8.0));
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        match v {
            Verdict::LocalBottleneck { factors, .. } => {
                assert!(factors.contains(&LocalFactor::MarginalSignal), "{factors:?}");
            }
            other => panic!("expected LocalBottleneck, got {other:?}"),
        }
    }

    #[test]
    fn low_memory_is_flagged_first() {
        let (model, cat) = fitted_model();
        let m =
            measurement(60.0, 36.0, Access::Wifi { band: Band::G2_4, rssi_dbm: -75.0 }, Some(1.0));
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        match v {
            Verdict::LocalBottleneck { factors, .. } => {
                assert_eq!(factors[0], LocalFactor::LowMemory);
            }
            other => panic!("expected LocalBottleneck, got {other:?}"),
        }
    }

    #[test]
    fn web_tests_are_never_clean_evidence() {
        let (model, cat) = fitted_model();
        let m = measurement(120.0, 36.0, Access::Unknown, None);
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        match v {
            Verdict::LocalBottleneck { factors, .. } => {
                assert!(factors.contains(&LocalFactor::UnknownMedium));
            }
            other => panic!("expected LocalBottleneck, got {other:?}"),
        }
    }

    #[test]
    fn mlab_on_fast_plans_gets_the_methodology_caveat() {
        let (model, cat) = fitted_model();
        let mut m = measurement(250.0, 33.0, Access::Unknown, None);
        m.platform = Platform::NdtWeb;
        let v = diagnose(&m, &model, &cat, Some(6), &DiagnoseConfig::default());
        match v {
            Verdict::LocalBottleneck { factors, .. } => {
                assert!(factors.contains(&LocalFactor::SingleFlowMethodology), "{factors:?}");
            }
            other => panic!("expected LocalBottleneck, got {other:?}"),
        }
    }

    #[test]
    fn unassignable_measurement_is_unattributable() {
        let (model, cat) = fitted_model();
        // 0.9 Mbps upload sits in no cap's tolerance.
        let m = measurement(5.0, 0.9, Access::Unknown, None);
        let v = diagnose(&m, &model, &cat, None, &DiagnoseConfig::default());
        assert_eq!(v, Verdict::Unattributable);
    }

    #[test]
    fn campaign_triage_counts_everything_once() {
        let (model, cat) = fitted_model();
        let ms = vec![
            measurement(98.0, 5.2, Access::Ethernet, Some(16.0)),
            measurement(20.0, 5.2, Access::Ethernet, Some(16.0)),
            measurement(40.0, 36.0, Access::Wifi { band: Band::G2_4, rssi_dbm: -80.0 }, Some(4.0)),
            measurement(5.0, 0.9, Access::Unknown, None),
        ];
        let tiers = vec![Some(2), Some(2), Some(6), None];
        let s = triage_campaign(&ms, &tiers, &model, &cat, &DiagnoseConfig::default());
        assert_eq!(s.total(), 4);
        assert_eq!(s.meets_plan, 1);
        assert_eq!(s.access_underperformance, 1);
        assert_eq!(s.local_bottleneck, 1);
        assert_eq!(s.unattributable, 1);
    }

    #[test]
    fn factor_descriptions_are_informative() {
        for f in [
            LocalFactor::WifiAccess,
            LocalFactor::Band24GHz,
            LocalFactor::WeakSignal,
            LocalFactor::MarginalSignal,
            LocalFactor::LowMemory,
            LocalFactor::UnknownMedium,
            LocalFactor::SingleFlowMethodology,
        ] {
            assert!(f.describe().len() > 10);
        }
    }
}
