#![warn(missing_docs)]
//! The Broadband Subscription Tier (BST) methodology — the paper's primary
//! contribution (§4.2).
//!
//! BST is a two-stage hierarchical unsupervised clustering pipeline that
//! maps each `<download speed, upload speed>` measurement tuple to the ISP
//! subscription plan it originated from:
//!
//! 1. **Stage 1 ([`stage1`])** clusters the *upload* speeds. Upload caps
//!    are few and small, and upload measurements are far less noisy than
//!    downloads (§4.1), so Kernel Density Estimation counts the clusters
//!    and a Gaussian Mixture Model fit with EM assigns each measurement to
//!    an ISP upload cap.
//! 2. **Stage 2 ([`stage2`])** re-applies KDE + GMM-EM to the *download*
//!    speeds **within** each upload cluster, then maps the recovered
//!    download components onto the plans that share that upload cap.
//!
//! [`assign::BstModel`] composes the stages into a fitted model;
//! [`eval`] scores it against ground truth (the paper's Table 2);
//! [`consistency`] implements the §5.2 per-user/month α analysis;
//! [`ablation`] implements the design-choice baselines the paper argues
//! against (download-first clustering, k-means assignment, BIC component
//! selection); [`mod@diagnose`] operationalizes the paper's §8 recommendation
//! by triaging measurements into plan-limited / locally-bottlenecked /
//! access-under-performing classes for coverage-challenge processes.

pub mod ablation;
pub mod assign;
pub mod consistency;
pub mod diagnose;
pub mod eval;
pub mod obs;
pub mod stability;
pub mod stage1;
pub mod stage2;

pub use assign::{BstModel, PlanAssignment};
pub use consistency::{alpha_values, consistency_cdf, AlphaConfig};
pub use diagnose::{diagnose, triage_campaign, DiagnoseConfig, LocalFactor, Verdict};
pub use eval::{evaluate, Evaluation};
pub use obs::observe_model;
pub use stability::{assignment_stability, StabilityReport};
pub use stage1::{cluster_uploads, UploadClustering};
pub use stage2::{cluster_downloads, DownloadClustering};

/// Configuration shared by both BST stages.
#[derive(Debug, Clone, PartialEq)]
pub struct BstConfig {
    /// Grid resolution for KDE peak counting.
    pub kde_grid_points: usize,
    /// Minimum KDE peak prominence (fraction of the max density) for a
    /// peak to count as a cluster.
    pub kde_min_prominence: f64,
    /// Multiplier on the Silverman bandwidth for peak counting. Speed
    /// distributions are multi-scale (clusters at 1 and 35 Mbps in one
    /// sample), where the global Silverman rule over-smooths; 0.5 keeps
    /// nearby low-rate clusters separable.
    pub kde_bandwidth_scale: f64,
    /// Upper bound on download components per upload group (the paper
    /// associates up to 10 download clusters per tier, §5.1).
    pub max_download_clusters: usize,
    /// EM iteration budget.
    pub max_em_iter: usize,
}

impl Default for BstConfig {
    fn default() -> Self {
        BstConfig {
            kde_grid_points: 512,
            kde_min_prominence: 0.02,
            kde_bandwidth_scale: 0.5,
            max_download_clusters: 10,
            max_em_iter: 200,
        }
    }
}
