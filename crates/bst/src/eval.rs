//! Evaluation of a fitted BST model against ground truth.
//!
//! The paper's Table 2 scores **upload-tier** accuracy — whether each
//! measurement's assigned upload cap matches the cap of its true plan —
//! on the MBA dataset, where truth is known. §4.3 additionally reports
//! per-group download accuracy. Both are computed here.

use crate::assign::BstModel;
use st_speedtest::PlanCatalog;

/// Accuracy summary for one evaluated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Measurements evaluated (those with known truth).
    pub n: usize,
    /// Fraction whose assigned upload cap matches the true plan's cap
    /// (the Table 2 metric).
    pub upload_accuracy: f64,
    /// Fraction whose assigned tier matches the true tier exactly.
    pub plan_accuracy: f64,
    /// Fraction of measurements that received any assignment.
    pub coverage: f64,
    /// Per-upload-cap download accuracy: `(cap_mbps, n, accuracy)`.
    pub per_group: Vec<(f64, usize, f64)>,
}

/// Score `model` against per-measurement ground-truth tiers.
///
/// `truth[i]` is the true 1-based tier of measurement `i` (as fitted, in
/// order), or `None` when unknown; unknown-truth measurements are skipped.
pub fn evaluate(model: &BstModel, truth: &[Option<usize>], catalog: &PlanCatalog) -> Evaluation {
    assert_eq!(truth.len(), model.assignments.len(), "one truth entry per fitted measurement");

    let mut n = 0usize;
    let mut upload_ok = 0usize;
    let mut plan_ok = 0usize;
    let mut per_group: Vec<(f64, usize, usize)> =
        catalog.upload_caps().iter().map(|c| (c.0, 0usize, 0usize)).collect();

    for (a, t) in model.assignments.iter().zip(truth) {
        let Some(t) = *t else { continue };
        let true_plan = catalog.plan(t).expect("truth tier exists in catalog");
        n += 1;
        if a.upload_cap == Some(true_plan.up) {
            upload_ok += 1;
            // Download accuracy is conditional on the correct group.
            let entry =
                per_group.iter_mut().find(|(c, ..)| *c == true_plan.up.0).expect("cap in catalog");
            entry.1 += 1;
            if a.tier == Some(t) {
                entry.2 += 1;
            }
        }
        if a.tier == Some(t) {
            plan_ok += 1;
        }
    }

    Evaluation {
        n,
        upload_accuracy: if n == 0 { 0.0 } else { upload_ok as f64 / n as f64 },
        plan_accuracy: if n == 0 { 0.0 } else { plan_ok as f64 / n as f64 },
        coverage: model.coverage(),
        per_group: per_group
            .into_iter()
            .map(|(c, gn, gok)| (c, gn, if gn == 0 { 0.0 } else { gok as f64 / gn as f64 }))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BstConfig;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    fn fitted() -> (BstModel, Vec<Option<usize>>, PlanCatalog) {
        let mut r = StdRng::seed_from_u64(43);
        let spec: [(f64, f64, f64, f64, usize, usize); 4] = [
            (110.0, 8.0, 5.4, 0.4, 400, 2),
            (430.0, 25.0, 10.7, 0.6, 250, 4),
            (700.0, 60.0, 16.0, 0.8, 150, 5),
            (900.0, 80.0, 38.0, 1.5, 200, 6),
        ];
        let (mut down, mut up, mut truth) = (Vec::new(), Vec::new(), Vec::new());
        for &(dmu, dsd, umu, usd, n, tier) in &spec {
            for _ in 0..n {
                let g = |r: &mut StdRng, mu: f64, sd: f64| {
                    let u1: f64 = r.gen::<f64>().max(1e-12);
                    let u2: f64 = r.gen();
                    mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
                };
                down.push(g(&mut r, dmu, dsd).max(1.0));
                up.push(g(&mut r, umu, usd).max(0.3));
                truth.push(Some(tier));
            }
        }
        let cat = isp_a();
        let model = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut r).unwrap();
        (model, truth, cat)
    }

    #[test]
    fn mba_like_sample_scores_above_paper_threshold() {
        let (model, truth, cat) = fitted();
        let ev = evaluate(&model, &truth, &cat);
        assert_eq!(ev.n, 1000);
        assert!(ev.upload_accuracy > 0.96, "upload accuracy {}", ev.upload_accuracy);
        assert!(ev.plan_accuracy > 0.9, "plan accuracy {}", ev.plan_accuracy);
        assert!(ev.coverage > 0.95);
    }

    #[test]
    fn per_group_breakdown_covers_caps() {
        let (model, truth, cat) = fitted();
        let ev = evaluate(&model, &truth, &cat);
        assert_eq!(ev.per_group.len(), 4);
        let caps: Vec<f64> = ev.per_group.iter().map(|(c, ..)| *c).collect();
        assert_eq!(caps, vec![5.0, 10.0, 15.0, 35.0]);
        // Single-plan groups score ~100% download accuracy (§4.3).
        for &(cap, n, acc) in &ev.per_group {
            if cap > 5.0 && n > 50 {
                assert!(acc > 0.95, "cap {cap}: download accuracy {acc}");
            }
        }
    }

    #[test]
    fn unknown_truth_is_skipped() {
        let (model, mut truth, cat) = fitted();
        let known = truth.len();
        truth[0] = None;
        truth[1] = None;
        let ev = evaluate(&model, &truth, &cat);
        assert_eq!(ev.n, known - 2);
    }

    #[test]
    #[should_panic(expected = "one truth entry per fitted measurement")]
    fn truth_length_mismatch_panics() {
        let (model, _, cat) = fitted();
        let _ = evaluate(&model, &[Some(1)], &cat);
    }
}
