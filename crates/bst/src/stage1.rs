//! Stage 1: upload-speed clustering.
//!
//! Uploads are the low-variance axis (§4.1: median consistency factor 0.87
//! vs 0.58 for downloads), so they anchor the hierarchy. KDE confirms how
//! many density clusters the sample contains; a GMM with one component per
//! detected cluster is fit with EM; each component is then matched to the
//! nearest ISP upload cap. Components that land far from every cap (e.g.
//! M-Lab's ~1 Mbps browser-limited cluster, Fig. 6) stay unmatched, and
//! their measurements are excluded from tier assignment rather than being
//! forced into a wrong plan.

use crate::BstConfig;
use rand::Rng;
use st_netsim::Mbps;
use st_speedtest::PlanCatalog;
use st_stats::{GaussianMixture, GmmConfig, KernelDensity, StatsError};

/// A fitted stage-1 clustering.
#[derive(Debug, Clone)]
pub struct UploadClustering {
    /// The fitted mixture over upload speeds (components sorted by mean).
    pub gmm: GaussianMixture,
    /// For each GMM component: the matched ISP upload cap, or `None` if
    /// the component sits too far from every cap.
    pub component_caps: Vec<Option<Mbps>>,
    /// Per-measurement component index (parallel to the input sample).
    pub assignments: Vec<usize>,
    /// Number of KDE peaks detected before fitting.
    pub kde_peaks: usize,
}

impl UploadClustering {
    /// The matched upload cap for measurement `i`, if its component
    /// matched one.
    pub fn cap_of(&self, i: usize) -> Option<Mbps> {
        self.component_caps.get(self.assignments[i]).copied().flatten()
    }

    /// Indices of measurements assigned to `cap`.
    pub fn members_of(&self, cap: Mbps) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &c)| self.component_caps.get(c).copied().flatten() == Some(cap))
            .map(|(i, _)| i)
            .collect()
    }

    /// Mean upload speed of each component matched to `cap` (weighted by
    /// component weight) — the per-tier means reported in Table 3.
    pub fn matched_mean(&self, cap: Mbps) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (c, comp) in self.gmm.components().iter().enumerate() {
            if self.component_caps[c] == Some(cap) {
                num += comp.weight * comp.mean;
                den += comp.weight;
            }
        }
        (den > 0.0).then(|| num / den)
    }
}

/// Cluster upload speeds and match components to the catalog's upload caps.
///
/// A component matches the nearest cap if its mean is within
/// `max(40% of the cap, 2 Mbps)`; otherwise it is left unmatched. The GMM
/// order (how many components to fit) is the number of KDE peaks, floored
/// at the number of distinct caps so sparse groups are not merged.
pub fn cluster_uploads<R: Rng + ?Sized>(
    uploads: &[f64],
    catalog: &PlanCatalog,
    cfg: &BstConfig,
    rng: &mut R,
) -> Result<UploadClustering, StatsError> {
    let caps = catalog.upload_caps();

    let kde =
        KernelDensity::fit(uploads, st_stats::kde::scaled_silverman(cfg.kde_bandwidth_scale))?;
    let peaks = kde.find_peaks(cfg.kde_grid_points, cfg.kde_min_prominence)?;
    let kde_peaks = peaks.len();

    // EM is seeded with one component per offered cap — the paper collects
    // the offered plans first (§4.1), so the candidate cluster centers are
    // known. KDE peaks that sit far from every cap seed *extra* components
    // (the unmatched-cluster safety valve for e.g. browser-limited
    // uploads), capped at 3 extras.
    let mut init_means: Vec<f64> = caps.iter().map(|c| c.0).collect();
    for p in &peaks {
        let near_cap = caps.iter().any(|c| (p.x - c.0).abs() <= (c.0 * 0.4).max(2.0));
        if !near_cap && init_means.len() < caps.len() + 3 {
            init_means.push(p.x);
        }
    }
    init_means.truncate(uploads.len());
    // A uniform background absorbs straggler uploads (cross-traffic-halved
    // tests, odd client limits) that would otherwise balloon a cap's
    // component into a catch-all.
    let gmm_cfg = GmmConfig {
        max_iter: cfg.max_em_iter,
        background_weight: Some(0.03),
        ..Default::default()
    };
    let gmm = match GaussianMixture::fit_with_means(uploads, &init_means, gmm_cfg) {
        Ok(g) => g,
        // Degenerate tiny samples: fall back to unseeded EM with whatever
        // order fits.
        Err(_) => {
            let k = caps.len().min(uploads.len()).max(1);
            GaussianMixture::fit(
                uploads,
                GmmConfig { k, max_iter: cfg.max_em_iter, ..Default::default() },
                rng,
            )?
        }
    };

    let component_caps: Vec<Option<Mbps>> = gmm
        .components()
        .iter()
        .map(|comp| {
            let cap = catalog.nearest_upload_cap(Mbps(comp.mean));
            let tolerance = (cap.0 * 0.4).max(2.0);
            ((comp.mean - cap.0).abs() <= tolerance).then_some(cap)
        })
        .collect();

    // The background's job is to keep stragglers from distorting the
    // component fits. At assignment time, a background-rejected point that
    // still sits within tolerance of an offered cap belongs to that cap's
    // component; only points far from every cap stay unmatched (they get
    // the pseudo-index `k`, which `cap_of`/`members_of` treat as such).
    let k = gmm.k();
    let component_of_cap =
        |cap: Mbps| -> Option<usize> { component_caps.iter().position(|c| *c == Some(cap)) };
    let assignments: Vec<usize> = gmm
        .predict_with_background_batch(uploads)
        .into_iter()
        .zip(uploads)
        .map(|(pred, &u)| {
            if let Some(c) = pred {
                return c;
            }
            let cap = catalog.nearest_upload_cap(Mbps(u));
            let tolerance = (cap.0 * 0.4).max(2.0);
            if (u - cap.0).abs() <= tolerance {
                component_of_cap(cap).unwrap_or(k)
            } else {
                k
            }
        })
        .collect();
    Ok(UploadClustering { gmm, component_caps, assignments, kde_peaks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    /// Upload sample shaped like Fig. 4: clusters at/above the caps.
    fn upload_sample(r: &mut StdRng) -> (Vec<f64>, Vec<Mbps>) {
        let spec = [
            (5.4, 0.5, 900usize, 5.0),
            (10.8, 0.7, 300, 10.0),
            (16.2, 0.9, 250, 15.0),
            (37.5, 1.8, 350, 35.0),
        ];
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for &(mu, sd, n, cap) in &spec {
            for _ in 0..n {
                let u1: f64 = r.gen::<f64>().max(1e-12);
                let u2: f64 = r.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                data.push((mu + sd * z).max(0.3));
                truth.push(Mbps(cap));
            }
        }
        (data, truth)
    }

    #[test]
    fn recovers_the_four_upload_tiers() {
        let mut r = rng();
        let (data, truth) = upload_sample(&mut r);
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        let correct = (0..data.len()).filter(|&i| uc.cap_of(i) == Some(truth[i])).count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.96, "upload accuracy {acc} (paper: >96%)");
    }

    #[test]
    fn kde_sees_about_four_peaks() {
        let mut r = rng();
        let (data, _) = upload_sample(&mut r);
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        assert!((3..=5).contains(&uc.kde_peaks), "peaks {}", uc.kde_peaks);
    }

    #[test]
    fn matched_means_sit_near_caps() {
        let mut r = rng();
        let (data, _) = upload_sample(&mut r);
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        for cap in [5.0, 10.0, 15.0, 35.0] {
            let mean = uc.matched_mean(Mbps(cap)).expect("cap has a component");
            assert!((mean - cap).abs() < cap * 0.25, "cap {cap}: mean {mean}");
        }
    }

    #[test]
    fn members_partition_consistently() {
        let mut r = rng();
        let (data, _) = upload_sample(&mut r);
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        let total: usize =
            [5.0, 10.0, 15.0, 35.0].iter().map(|&c| uc.members_of(Mbps(c)).len()).sum();
        let unmatched = (0..data.len()).filter(|&i| uc.cap_of(i).is_none()).count();
        assert_eq!(total + unmatched, data.len());
    }

    #[test]
    fn rogue_low_cluster_stays_unmatched() {
        // Add an M-Lab-style ~1 Mbps cluster; it must not be forced onto
        // the 5 Mbps cap (it is 80% below it).
        let mut r = rng();
        let (mut data, _) = upload_sample(&mut r);
        for _ in 0..200 {
            data.push(0.8 + r.gen::<f64>() * 0.5);
        }
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        let low_points: Vec<usize> = (0..data.len()).filter(|&i| data[i] < 1.6).collect();
        let unmatched_low = low_points.iter().filter(|&&i| uc.cap_of(i).is_none()).count();
        assert!(
            unmatched_low as f64 / low_points.len() as f64 > 0.7,
            "{unmatched_low}/{} low-upload points unmatched",
            low_points.len()
        );
    }

    #[test]
    fn empty_input_is_an_error() {
        let mut r = rng();
        assert!(cluster_uploads(&[], &isp_a(), &BstConfig::default(), &mut r).is_err());
    }

    #[test]
    fn tiny_sample_still_fits() {
        let mut r = rng();
        let data = [5.1, 5.2, 10.4, 15.3, 36.0, 34.8];
        let uc = cluster_uploads(&data, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        assert_eq!(uc.assignments.len(), 6);
    }
}
