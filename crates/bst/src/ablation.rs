//! Ablations of BST's design choices.
//!
//! The paper justifies three decisions that these baselines let us test
//! quantitatively (see DESIGN.md §8 and the `ablations` bench):
//!
//! * **Upload-first hierarchy** (§4.1): [`download_first_tiers`] clusters
//!   the noisy download axis directly, with one component per plan, and
//!   maps components to plans — no upload stage.
//! * **GMM vs k-means** (§4.2): [`kmeans_tiers`] replaces the
//!   variance-aware GMM assignment with nearest-centroid k-means in both
//!   stages.
//! * **KDE peak-count vs BIC** (§4.2): [`bic_upload_components`] selects
//!   the stage-1 component count by BIC instead of KDE peak counting.

use crate::BstConfig;
use rand::Rng;
use st_netsim::Mbps;
use st_speedtest::PlanCatalog;
use st_stats::{kmeans_1d, GaussianMixture, GaussianMixture2d, StatsError};

/// Baseline 1: single-stage, download-only clustering.
///
/// Fits one component per plan over the raw download speeds and assigns
/// each cluster to the nearest plan by download cap. Returns per-
/// measurement tiers.
pub fn download_first_tiers<R: Rng + ?Sized>(
    down: &[f64],
    catalog: &PlanCatalog,
    cfg: &BstConfig,
    rng: &mut R,
) -> Result<Vec<Option<usize>>, StatsError> {
    let k = catalog.len().min(down.len());
    let gmm = GaussianMixture::fit(
        down,
        st_stats::GmmConfig { k, max_iter: cfg.max_em_iter, ..Default::default() },
        rng,
    )?;
    let component_tiers: Vec<usize> =
        gmm.components().iter().map(|c| catalog.nearest_tier_by_download(Mbps(c.mean))).collect();
    Ok(gmm.predict_batch(down).into_iter().map(|c| Some(component_tiers[c])).collect())
}

/// Baseline 2: the BST hierarchy with k-means instead of GMM.
///
/// Stage 1: k-means over uploads with k = number of caps, centroids mapped
/// to nearest caps. Stage 2: within each group, k-means over downloads
/// with k = number of plans in the group, centroids mapped to plans.
pub fn kmeans_tiers<R: Rng + ?Sized>(
    down: &[f64],
    up: &[f64],
    catalog: &PlanCatalog,
    rng: &mut R,
) -> Result<Vec<Option<usize>>, StatsError> {
    assert_eq!(down.len(), up.len(), "parallel down/up samples required");
    let caps = catalog.upload_caps();
    let k1 = caps.len().min(up.len());
    let km1 = kmeans_1d(up, k1, 100, rng)?;
    let center_caps: Vec<Mbps> =
        km1.centers.iter().map(|&c| catalog.nearest_upload_cap(Mbps(c))).collect();

    let mut tiers = vec![None; down.len()];
    for cap in caps {
        let members: Vec<usize> =
            (0..down.len()).filter(|&i| center_caps[km1.assignments[i]] == cap).collect();
        if members.is_empty() {
            continue;
        }
        let plans = catalog.plans_with_upload(cap);
        let group_downs: Vec<f64> = members.iter().map(|&i| down[i]).collect();
        let k2 = plans.len().min(group_downs.len());
        let km2 = kmeans_1d(&group_downs, k2, 100, rng)?;
        let center_tiers: Vec<usize> = km2
            .centers
            .iter()
            .map(|&c| {
                plans
                    .iter()
                    .min_by(|a, b| {
                        (a.down.0 - c).abs().partial_cmp(&(b.down.0 - c).abs()).expect("finite")
                    })
                    .expect("non-empty group")
                    .tier
            })
            .collect();
        for (j, &i) in members.iter().enumerate() {
            tiers[i] = Some(center_tiers[km2.assignments[j]]);
        }
    }
    Ok(tiers)
}

/// Baseline 3: one joint bivariate mixture over `<download, upload>`
/// tuples — the "obvious" reading of the paper's problem statement that
/// the hierarchical design replaces. One full-covariance component per
/// plan, seeded at the plan's advertised speeds; each measurement maps
/// to its component's plan.
pub fn joint_2d_tiers(
    down: &[f64],
    up: &[f64],
    catalog: &PlanCatalog,
) -> Result<Vec<Option<usize>>, StatsError> {
    assert_eq!(down.len(), up.len(), "parallel down/up samples required");
    let seeds: Vec<(f64, f64)> = catalog.plans().iter().map(|p| (p.down.0, p.up.0)).collect();
    let gm = GaussianMixture2d::fit_with_means(down, up, &seeds, 200, 1e-7)?;
    // Components are in seed order, so component c is plan tier c+1.
    Ok((0..down.len()).map(|i| Some(gm.predict(down[i], up[i]) + 1)).collect())
}

/// Baseline 4: BIC component selection for stage 1.
///
/// Returns the number of upload components BIC selects, to compare with
/// the KDE peak count and the true cap count.
pub fn bic_upload_components<R: Rng + ?Sized>(
    up: &[f64],
    max_k: usize,
    rng: &mut R,
) -> Result<usize, StatsError> {
    let gm = GaussianMixture::fit_best_bic(up, 1..=max_k, rng)?;
    Ok(gm.k())
}

/// Accuracy of a tier vector against truth (shared scoring helper).
pub fn tier_accuracy(tiers: &[Option<usize>], truth: &[usize]) -> f64 {
    assert_eq!(tiers.len(), truth.len(), "parallel tiers/truth required");
    if truth.is_empty() {
        return 0.0;
    }
    let ok = tiers.iter().zip(truth).filter(|(got, want)| got.as_ref() == Some(want)).count();
    ok as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::items_after_test_module)]
    use super::*;
    use crate::assign::BstModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(47)
    }

    pub(super) fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    fn gaussian(r: &mut StdRng, mu: f64, sd: f64) -> f64 {
        let u1: f64 = r.gen::<f64>().max(1e-12);
        let u2: f64 = r.gen();
        mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A *noisy* crowdsourced-style sample: WiFi drags a large share of
    /// each tier's downloads far below plan, while uploads stay clustered.
    pub(super) fn noisy_sample(r: &mut StdRng) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
        let spec: [(f64, f64, usize, usize); 4] = [
            (110.0, 5.4, 500, 2),
            (430.0, 10.7, 280, 4),
            (780.0, 16.0, 200, 5),
            (1000.0, 37.5, 300, 6),
        ];
        let (mut down, mut up, mut truth) = (Vec::new(), Vec::new(), Vec::new());
        for &(dmu, umu, n, tier) in &spec {
            for _ in 0..n {
                // Half the tests are WiFi-degraded to a fraction of plan.
                let degradation = if r.gen::<f64>() < 0.5 {
                    0.15 + r.gen::<f64>() * 0.5
                } else {
                    0.85 + r.gen::<f64>() * 0.2
                };
                down.push((gaussian(r, dmu, dmu * 0.05) * degradation).max(1.0));
                up.push(gaussian(r, umu, umu * 0.06).max(0.3));
                truth.push(tier);
            }
        }
        (down, up, truth)
    }

    #[test]
    fn upload_first_beats_download_first_on_noisy_data() {
        let mut r = rng();
        let (down, up, truth) = noisy_sample(&mut r);
        let cat = isp_a();
        let cfg = BstConfig::default();

        let bst = BstModel::fit(&down, &up, &cat, &cfg, &mut r).unwrap();
        let bst_acc = tier_accuracy(&bst.tiers(), &truth);

        let df = download_first_tiers(&down, &cat, &cfg, &mut r).unwrap();
        let df_acc = tier_accuracy(&df, &truth);

        assert!(
            bst_acc > df_acc + 0.15,
            "BST {bst_acc} should clearly beat download-first {df_acc}"
        );
        assert!(bst_acc > 0.8, "BST accuracy {bst_acc}");
    }

    #[test]
    fn kmeans_variant_works_but_gmm_is_at_least_as_good() {
        let mut r = rng();
        let (down, up, truth) = noisy_sample(&mut r);
        let cat = isp_a();

        let bst = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut r).unwrap();
        let gmm_acc = tier_accuracy(&bst.tiers(), &truth);
        let km = kmeans_tiers(&down, &up, &cat, &mut r).unwrap();
        let km_acc = tier_accuracy(&km, &truth);

        assert!(km_acc > 0.3, "k-means baseline should not be useless: {km_acc}");
        assert!(gmm_acc >= km_acc - 0.05, "GMM {gmm_acc} vs k-means {km_acc}");
    }

    #[test]
    fn bic_finds_a_plausible_upload_component_count() {
        let mut r = rng();
        let (_, up, _) = noisy_sample(&mut r);
        let k = bic_upload_components(&up, 8, &mut r).unwrap();
        assert!((3..=6).contains(&k), "BIC chose k = {k} for 4 real caps");
    }

    #[test]
    fn tier_accuracy_counts_exact_matches() {
        let tiers = vec![Some(1), Some(2), None, Some(4)];
        let truth = vec![1, 3, 3, 4];
        assert!((tier_accuracy(&tiers, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(tier_accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel tiers/truth")]
    fn accuracy_length_mismatch_panics() {
        let _ = tier_accuracy(&[Some(1)], &[1, 2]);
    }
}

#[cfg(test)]
mod joint_tests {
    use super::*;
    use crate::assign::BstModel;
    use crate::BstConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn joint_2d_is_viable_on_clean_data_but_loses_on_noisy_wifi_data() {
        // Reuse the noisy crowdsourced sample from the main test module.
        let mut r = StdRng::seed_from_u64(53);
        let (down, up, truth) = super::tests::noisy_sample(&mut r);
        let cat = super::tests::isp_a();

        let joint = joint_2d_tiers(&down, &up, &cat).unwrap();
        let joint_acc = tier_accuracy(&joint, &truth);

        let bst = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut r).unwrap();
        let bst_acc = tier_accuracy(&bst.tiers(), &truth);

        assert!(joint_acc > 0.2, "joint 2-D should not be useless: {joint_acc}");
        assert!(
            bst_acc >= joint_acc,
            "hierarchy {bst_acc} should be at least as accurate as joint 2-D {joint_acc}"
        );
    }

    #[test]
    fn joint_2d_rejects_mismatched_lengths() {
        let cat = super::tests::isp_a();
        let result = std::panic::catch_unwind(|| {
            let _ = joint_2d_tiers(&[1.0], &[1.0, 2.0], &cat);
        });
        assert!(result.is_err());
    }
}
