//! The composed BST model: stage 1 + stage 2 → plan assignment.

use crate::stage1::{cluster_uploads, UploadClustering};
use crate::stage2::{cluster_downloads, DownloadClustering};
use crate::BstConfig;
use rand::Rng;
use st_netsim::Mbps;
use st_speedtest::PlanCatalog;
use st_stats::StatsError;

/// The plan assignment for one measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanAssignment {
    /// Matched upload cap from stage 1 (`None`: the measurement fell in an
    /// unmatched upload cluster and no tier can be inferred).
    pub upload_cap: Option<Mbps>,
    /// Assigned subscription tier from stage 2.
    pub tier: Option<usize>,
}

/// A fitted BST model over one dataset.
#[derive(Debug, Clone)]
pub struct BstModel {
    /// The stage-1 clustering.
    pub uploads: UploadClustering,
    /// Stage-2 clusterings, one per matched upload cap, keyed by cap.
    pub downloads: Vec<(Mbps, DownloadClustering)>,
    /// Per-measurement assignments, parallel to the fitted sample.
    pub assignments: Vec<PlanAssignment>,
}

impl BstModel {
    /// Fit BST to a sample of `(download, upload)` speed pairs against the
    /// ISP catalog.
    pub fn fit<R: Rng + ?Sized>(
        down: &[f64],
        up: &[f64],
        catalog: &PlanCatalog,
        cfg: &BstConfig,
        rng: &mut R,
    ) -> Result<Self, StatsError> {
        assert_eq!(down.len(), up.len(), "parallel down/up samples required");

        let uploads = cluster_uploads(up, catalog, cfg, rng)?;
        let mut assignments = vec![PlanAssignment { upload_cap: None, tier: None }; down.len()];

        let mut downloads = Vec::new();
        for cap in catalog.upload_caps() {
            let members = uploads.members_of(cap);
            if members.is_empty() {
                continue;
            }
            let plans = catalog.plans_with_upload(cap);
            let group_downs: Vec<f64> = members.iter().map(|&i| down[i]).collect();
            let dc = cluster_downloads(&group_downs, &plans, cfg, rng)?;
            for (j, &i) in members.iter().enumerate() {
                assignments[i] =
                    PlanAssignment { upload_cap: Some(cap), tier: Some(dc.tier_of(j)) };
            }
            downloads.push((cap, dc));
        }

        Ok(BstModel { uploads, downloads, assignments })
    }

    /// Assigned tier per measurement (None where unassignable).
    pub fn tiers(&self) -> Vec<Option<usize>> {
        self.assignments.iter().map(|a| a.tier).collect()
    }

    /// Fraction of measurements that received a tier.
    pub fn coverage(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        self.assignments.iter().filter(|a| a.tier.is_some()).count() as f64
            / self.assignments.len() as f64
    }

    /// The stage-2 clustering for a given upload cap, if fitted.
    pub fn downloads_for(&self, cap: Mbps) -> Option<&DownloadClustering> {
        self.downloads.iter().find(|(c, _)| *c == cap).map(|(_, d)| d)
    }

    /// Classify a new measurement with the fitted model: nearest upload
    /// component → that group's download clustering → tier.
    pub fn assign(&self, down: f64, up: f64) -> PlanAssignment {
        let Some(comp) = self.uploads.gmm.predict_with_background(up) else {
            return PlanAssignment { upload_cap: None, tier: None };
        };
        let Some(cap) = self.uploads.component_caps[comp] else {
            return PlanAssignment { upload_cap: None, tier: None };
        };
        let Some(dc) = self.downloads_for(cap) else {
            return PlanAssignment { upload_cap: Some(cap), tier: None };
        };
        let dcomp = dc.gmm.predict(down);
        PlanAssignment { upload_cap: Some(cap), tier: Some(dc.component_tiers[dcomp]) }
    }

    /// Classify with a posterior confidence — BST as the "probabilistic
    /// model" of §4.2. The confidence is
    /// `P(upload group | up) × P(tier | group, down)`: stage-1
    /// responsibilities summed over the components matched to the chosen
    /// cap, times stage-2 responsibilities summed over the components
    /// mapped to the chosen tier. Unassignable measurements get 0.0.
    pub fn assign_with_confidence(&self, down: f64, up: f64) -> (PlanAssignment, f64) {
        let assignment = self.assign(down, up);
        let (Some(cap), Some(tier)) = (assignment.upload_cap, assignment.tier) else {
            return (assignment, 0.0);
        };

        let up_resp = self.uploads.gmm.responsibilities(up);
        let p_cap: f64 = up_resp
            .iter()
            .enumerate()
            .filter(|(c, _)| self.uploads.component_caps.get(*c).copied().flatten() == Some(cap))
            .map(|(_, r)| r)
            .sum();

        let p_tier = self
            .downloads_for(cap)
            .map(|dc| {
                dc.gmm
                    .responsibilities(down)
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| dc.component_tiers[*c] == tier)
                    .map(|(_, r)| r)
                    .sum::<f64>()
            })
            .unwrap_or(0.0);

        (assignment, (p_cap * p_tier).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(41)
    }

    fn isp_a() -> PlanCatalog {
        PlanCatalog::new(
            "ISP-A",
            &[
                (25.0, 5.0),
                (100.0, 5.0),
                (200.0, 5.0),
                (400.0, 10.0),
                (800.0, 15.0),
                (1200.0, 35.0),
            ],
        )
    }

    fn gaussian(r: &mut StdRng, mu: f64, sd: f64) -> f64 {
        let u1: f64 = r.gen::<f64>().max(1e-12);
        let u2: f64 = r.gen();
        mu + sd * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// An MBA-like wired sample: every tier near its plan speeds.
    fn wired_sample(r: &mut StdRng) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
        let spec: [(f64, f64, f64, f64, usize, usize); 6] = [
            (27.0, 3.0, 5.3, 0.4, 150, 1),
            (110.0, 8.0, 5.3, 0.4, 350, 2),
            (225.0, 12.0, 5.3, 0.4, 250, 3),
            (430.0, 25.0, 10.6, 0.6, 300, 4),
            (780.0, 60.0, 16.0, 0.8, 200, 5),
            (950.0, 80.0, 37.0, 1.5, 250, 6),
        ];
        let (mut down, mut up, mut truth) = (Vec::new(), Vec::new(), Vec::new());
        for &(dmu, dsd, umu, usd, n, tier) in &spec {
            for _ in 0..n {
                down.push(gaussian(r, dmu, dsd).max(1.0));
                up.push(gaussian(r, umu, usd).max(0.3));
                truth.push(tier);
            }
        }
        (down, up, truth)
    }

    #[test]
    fn wired_sample_recovers_plans_accurately() {
        let mut r = rng();
        let (down, up, truth) = wired_sample(&mut r);
        let model = BstModel::fit(&down, &up, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        let tiers = model.tiers();
        let correct =
            tiers.iter().zip(&truth).filter(|(got, want)| got.as_ref() == Some(want)).count();
        let acc = correct as f64 / truth.len() as f64;
        assert!(acc > 0.9, "plan accuracy {acc}");
        assert!(model.coverage() > 0.97, "coverage {}", model.coverage());
    }

    #[test]
    fn upload_tier_accuracy_exceeds_96_percent() {
        // The Table 2 criterion: correct *upload cap* assignment.
        let mut r = rng();
        let (down, up, truth) = wired_sample(&mut r);
        let cat = isp_a();
        let model = BstModel::fit(&down, &up, &cat, &BstConfig::default(), &mut r).unwrap();
        let correct = model
            .assignments
            .iter()
            .zip(&truth)
            .filter(|(a, &t)| a.upload_cap == Some(cat.plan(t).unwrap().up))
            .count();
        let acc = correct as f64 / truth.len() as f64;
        assert!(acc > 0.96, "upload-cap accuracy {acc}");
    }

    #[test]
    fn assign_classifies_new_points() {
        let mut r = rng();
        let (down, up, _) = wired_sample(&mut r);
        let model = BstModel::fit(&down, &up, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        let a = model.assign(112.0, 5.2);
        assert_eq!(a.upload_cap, Some(Mbps(5.0)));
        assert_eq!(a.tier, Some(2));
        let b = model.assign(950.0, 36.0);
        assert_eq!(b.tier, Some(6));
    }

    #[test]
    fn downloads_for_exposes_group_models() {
        let mut r = rng();
        let (down, up, _) = wired_sample(&mut r);
        let model = BstModel::fit(&down, &up, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        assert!(model.downloads_for(Mbps(5.0)).is_some());
        assert!(model.downloads_for(Mbps(99.0)).is_none());
        let five = model.downloads_for(Mbps(5.0)).unwrap();
        assert!(five.gmm.k() >= 3, "5 Mbps group has 3 plans");
    }

    #[test]
    fn confidence_tracks_ambiguity() {
        let mut r = rng();
        let (down, up, _) = wired_sample(&mut r);
        let model = BstModel::fit(&down, &up, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        // A point at a cluster center is confidently assigned ...
        let (a, conf_clear) = model.assign_with_confidence(110.0, 5.3);
        assert_eq!(a.tier, Some(2));
        assert!(conf_clear > 0.9, "clear-point confidence {conf_clear}");
        // ... a point at the responsibility crossover between two
        // different-tier components splits its posterior. Find the
        // crossover numerically from the fitted group model.
        let dc = model.downloads_for(Mbps(5.0)).expect("5 Mbps group fitted");
        let probe = (0..2000)
            .map(|i| i as f64 * 0.25)
            .min_by_key(|&x| {
                let r = dc.gmm.responsibilities(x);
                // distance from an even two-way split across tiers
                let mut per_tier = std::collections::HashMap::new();
                for (c, p) in r.iter().enumerate() {
                    *per_tier.entry(dc.component_tiers[c]).or_insert(0.0f64) += p;
                }
                let top = per_tier.values().cloned().fold(0.0f64, f64::max);
                (top * 1e6) as u64
            })
            .expect("non-empty probe range");
        let (_, conf_mid) = model.assign_with_confidence(probe, 5.3);
        assert!(
            conf_mid < conf_clear,
            "crossover at {probe}: confidence {conf_mid} vs clear {conf_clear}"
        );
        assert!(conf_mid < 0.95, "crossover confidence {conf_mid} should be split");
        // Unassignable points get zero.
        let (u, conf_zero) = model.assign_with_confidence(5.0, 0.8);
        assert_eq!(u.tier, None);
        assert_eq!(conf_zero, 0.0);
    }

    #[test]
    fn confidence_is_a_probability() {
        let mut r = rng();
        let (down, up, _) = wired_sample(&mut r);
        let model = BstModel::fit(&down, &up, &isp_a(), &BstConfig::default(), &mut r).unwrap();
        for (d, u) in [(25.0, 5.0), (410.0, 10.5), (900.0, 37.0), (1.0, 44.0)] {
            let (_, c) = model.assign_with_confidence(d, u);
            assert!((0.0..=1.0).contains(&c), "confidence {c} for ({d}, {u})");
        }
    }

    #[test]
    #[should_panic(expected = "parallel down/up samples")]
    fn mismatched_lengths_panic() {
        let mut r = rng();
        let _ = BstModel::fit(&[1.0], &[1.0, 2.0], &isp_a(), &BstConfig::default(), &mut r);
    }
}
