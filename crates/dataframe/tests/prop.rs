//! Property-based tests for the data-frame substrate.

use proptest::prelude::*;
use st_dataframe::{csv, Agg, Column, DataFrame};

fn frame_strategy() -> impl Strategy<Value = DataFrame> {
    (1usize..60).prop_flat_map(|n| {
        (
            prop::collection::vec(0.0f64..1000.0, n..=n),
            prop::collection::vec(0i64..5, n..=n),
            prop::collection::vec(prop::sample::select(vec!["A", "B", "C"]), n..=n),
            prop::collection::vec(any::<bool>(), n..=n),
        )
            .prop_map(|(down, tier, city, wifi)| {
                DataFrame::from_columns([
                    ("down", Column::F64(down.into())),
                    ("tier", Column::I64(tier)),
                    ("city", Column::from(city)),
                    ("wifi", Column::Bool(wifi)),
                ])
                .expect("equal lengths by construction")
            })
    })
}

proptest! {
    #[test]
    fn filter_preserves_schema_and_shrinks(df in frame_strategy(), bits in prop::collection::vec(any::<bool>(), 0..60)) {
        let mut mask = bits;
        mask.resize(df.n_rows(), false);
        let out = df.filter(&mask).unwrap();
        prop_assert_eq!(out.n_cols(), df.n_cols());
        prop_assert_eq!(out.n_rows(), mask.iter().filter(|&&b| b).count());
        prop_assert_eq!(out.names(), df.names());
    }

    #[test]
    fn filter_then_concat_partitions_rows(df in frame_strategy(), bits in prop::collection::vec(any::<bool>(), 0..60)) {
        let mut mask = bits;
        mask.resize(df.n_rows(), false);
        let yes = df.filter(&mask).unwrap();
        let no = df.filter(&DataFrame::mask_not(&mask)).unwrap();
        prop_assert_eq!(yes.n_rows() + no.n_rows(), df.n_rows());
        // Sums are preserved across the partition.
        let sum = |f: &DataFrame| f.f64("down").unwrap().iter().sum::<f64>();
        prop_assert!((sum(&yes) + sum(&no) - sum(&df)).abs() < 1e-6);
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(df in frame_strategy()) {
        let sorted = df.sort_by(&["down"]).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let col = sorted.f64("down").unwrap();
        for w in col.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut a: Vec<f64> = df.f64("down").unwrap().to_vec();
        let mut b: Vec<f64> = col.to_vec();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn groupby_counts_cover_all_rows(df in frame_strategy()) {
        let gb = df.group_by(&["tier"]).unwrap();
        let total: usize = gb.iter().map(|(_, rows)| rows.len()).sum();
        prop_assert_eq!(total, df.n_rows());
        let agg = gb.agg(&[("down", Agg::Count)]).unwrap();
        let count_sum: f64 = agg.f64("down_count").unwrap().iter().sum();
        prop_assert_eq!(count_sum as usize, df.n_rows());
    }

    #[test]
    fn group_means_are_bounded_by_group_extremes(df in frame_strategy()) {
        let agg = df
            .group_by(&["city"]).unwrap()
            .agg(&[("down", Agg::Mean), ("down", Agg::Min), ("down", Agg::Max)])
            .unwrap();
        let means = agg.f64("down_mean").unwrap();
        let mins = agg.f64("down_min").unwrap();
        let maxs = agg.f64("down_max").unwrap();
        for i in 0..agg.n_rows() {
            prop_assert!(means[i] >= mins[i] - 1e-9);
            prop_assert!(means[i] <= maxs[i] + 1e-9);
        }
    }

    #[test]
    fn csv_round_trips_exactly(df in frame_strategy()) {
        let text = csv::to_csv(&df).unwrap();
        let back = csv::from_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.names(), df.names());
        // Numeric columns round-trip through decimal text.
        let a = df.f64("down").unwrap();
        let b = back.f64("down").unwrap();
        for (x, y) in a.iter().zip(b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        prop_assert_eq!(back.i64("tier").unwrap(), df.i64("tier").unwrap());
        prop_assert_eq!(back.str("city").unwrap(), df.str("city").unwrap());
        prop_assert_eq!(back.bool("wifi").unwrap(), df.bool("wifi").unwrap());
    }

    #[test]
    fn vstack_length_adds(df in frame_strategy()) {
        let both = df.vstack(&df).unwrap();
        prop_assert_eq!(both.n_rows(), df.n_rows() * 2);
    }

    #[test]
    fn take_out_of_order_indices(df in frame_strategy(), raw in prop::collection::vec(0usize..1000, 0..40)) {
        let indices: Vec<usize> = raw.into_iter().map(|i| i % df.n_rows()).collect();
        let out = df.take(&indices);
        prop_assert_eq!(out.n_rows(), indices.len());
        let down = df.f64("down").unwrap();
        let out_down = out.f64("down").unwrap();
        for (j, &i) in indices.iter().enumerate() {
            prop_assert_eq!(out_down[j], down[i]);
        }
    }
}
