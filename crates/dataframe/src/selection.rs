//! Row selections: cheap, composable subsets of a columnar table.
//!
//! A [`Selection`] is a sorted list of row indices produced by predicate
//! passes over columns. Figures express "Android + WiFi-2.4GHz + tier k"
//! as one predicate pass (or an intersection of memoized selections)
//! instead of cloning rows into an owned `Vec`. Because indices are kept
//! in ascending order, gathering through a selection visits rows in the
//! same order as the classic `iter().enumerate().filter()` chain — which
//! is what keeps downstream artifacts byte-identical.

/// A sorted set of row indices into a columnar store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    indices: Vec<u32>,
}

impl Selection {
    /// The empty selection.
    pub fn empty() -> Self {
        Selection { indices: Vec::new() }
    }

    /// Select every row of a table with `len` rows.
    pub fn all(len: usize) -> Self {
        Selection { indices: (0..len as u32).collect() }
    }

    /// Build from a boolean mask (row `i` selected when `mask[i]`).
    pub fn from_mask(mask: &[bool]) -> Self {
        Selection {
            indices: mask
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i as u32))
                .collect(),
        }
    }

    /// Build by evaluating `pred` over rows `0..len`.
    pub fn from_pred(len: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        Selection { indices: (0..len as u32).filter(|&i| pred(i as usize)).collect() }
    }

    /// Build from raw indices; they must be ascending and unique.
    pub fn from_sorted(indices: Vec<u32>) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "indices must be ascending");
        Selection { indices }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The selected row indices, ascending.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterate the selected row indices as `usize`, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().map(|&i| i as usize)
    }

    /// Set intersection (both selections must index the same table).
    pub fn and(&self, other: &Selection) -> Selection {
        let (mut a, mut b) = (self.indices.iter().peekable(), other.indices.iter().peekable());
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        Selection { indices: out }
    }

    /// Set union (both selections must index the same table).
    pub fn or(&self, other: &Selection) -> Selection {
        let (mut a, mut b) = (self.indices.iter().peekable(), other.indices.iter().peekable());
        let mut out = Vec::with_capacity(self.len().max(other.len()));
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        out.push(x);
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(y);
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(x);
                        a.next();
                        b.next();
                    }
                },
                (Some(&&x), None) => {
                    out.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    out.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        Selection { indices: out }
    }

    /// Keep only selected rows for which `pred(row)` holds.
    pub fn refine(&self, mut pred: impl FnMut(usize) -> bool) -> Selection {
        Selection { indices: self.indices.iter().copied().filter(|&i| pred(i as usize)).collect() }
    }

    /// Gather a column through this selection (ascending row order).
    pub fn gather(&self, column: &[f64]) -> Vec<f64> {
        self.indices.iter().map(|&i| column[i as usize]).collect()
    }

    /// Gather a column through this selection, dropping non-finite values.
    ///
    /// Matches the classic `filter_map(|row| finite_value(row))` chain, so
    /// statistics over the result are bit-identical to the row-oriented
    /// code this replaces.
    pub fn gather_finite(&self, column: &[f64]) -> Vec<f64> {
        self.indices.iter().map(|&i| column[i as usize]).filter(|v| v.is_finite()).collect()
    }

    /// True when this selection picks every row of a table with `len` rows.
    ///
    /// Because indices are ascending, unique, and in bounds, a selection of
    /// `len` indices into a `len`-row table is necessarily `0..len`.
    pub fn is_identity(&self, len: usize) -> bool {
        self.indices.len() == len
    }

    /// Gather a column through this selection without copying when the
    /// selection is the identity: the full-table case borrows the source
    /// slice; true subsets materialize exactly as [`Selection::gather`].
    pub fn gather_view<'a>(&self, column: &'a [f64]) -> ColumnView<'a> {
        if self.is_identity(column.len()) {
            ColumnView::Borrowed(column)
        } else {
            ColumnView::Owned(self.gather(column))
        }
    }
}

/// A gathered column that is borrowed when the selection was the identity
/// and owned when rows were actually filtered. Dereferences to `&[f64]`
/// either way, so callers treat both cases uniformly.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnView<'a> {
    /// The selection covered every row; this aliases the source column.
    Borrowed(&'a [f64]),
    /// The selection was a strict subset; rows were materialized.
    Owned(Vec<f64>),
}

impl ColumnView<'_> {
    /// Convert into an owned `Vec`, copying only in the borrowed case.
    pub fn into_vec(self) -> Vec<f64> {
        match self {
            ColumnView::Borrowed(s) => s.to_vec(),
            ColumnView::Owned(v) => v,
        }
    }
}

impl std::ops::Deref for ColumnView<'_> {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        match self {
            ColumnView::Borrowed(s) => s,
            ColumnView::Owned(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_empty() {
        let all = Selection::all(5);
        let none = Selection::empty();
        assert_eq!(all.len(), 5);
        assert!(none.is_empty());
        assert_eq!(all.and(&none), none);
        assert_eq!(all.or(&none), all);
        assert_eq!(all.and(&all), all);
        assert_eq!(none.or(&none), none);
    }

    #[test]
    fn and_is_intersection() {
        let a = Selection::from_sorted(vec![0, 2, 4, 6]);
        let b = Selection::from_sorted(vec![1, 2, 3, 6, 7]);
        assert_eq!(a.and(&b).indices(), &[2, 6]);
        assert_eq!(b.and(&a).indices(), &[2, 6]);
    }

    #[test]
    fn or_is_union_without_duplicates() {
        let a = Selection::from_sorted(vec![0, 2, 4]);
        let b = Selection::from_sorted(vec![1, 2, 5]);
        assert_eq!(a.or(&b).indices(), &[0, 1, 2, 4, 5]);
        assert_eq!(b.or(&a).indices(), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn from_mask_and_pred_agree() {
        let mask = [true, false, true, true, false];
        let a = Selection::from_mask(&mask);
        let b = Selection::from_pred(mask.len(), |i| mask[i]);
        assert_eq!(a, b);
        assert_eq!(a.indices(), &[0, 2, 3]);
    }

    #[test]
    fn refine_filters_in_place() {
        let a = Selection::all(6).refine(|i| i % 2 == 0);
        assert_eq!(a.indices(), &[0, 2, 4]);
        assert_eq!(a.refine(|i| i > 0).indices(), &[2, 4]);
    }

    #[test]
    fn gather_preserves_order_and_finite_filter() {
        let col = [1.0, f64::NAN, 3.0, 4.0];
        let sel = Selection::from_sorted(vec![0, 1, 3]);
        assert_eq!(sel.gather(&col).len(), 3);
        assert_eq!(sel.gather_finite(&col), vec![1.0, 4.0]);
    }

    #[test]
    fn identity_gather_view_borrows() {
        let col = [1.0, 2.0, 3.0];
        let sel = Selection::all(3);
        assert!(sel.is_identity(3));
        let view = sel.gather_view(&col);
        assert!(matches!(view, ColumnView::Borrowed(s) if std::ptr::eq(s.as_ptr(), col.as_ptr())));
        assert_eq!(&*view, &col);
    }

    #[test]
    fn subset_gather_view_owns_and_matches_gather() {
        let col = [1.0, 2.0, 3.0, 4.0];
        let sel = Selection::from_sorted(vec![1, 3]);
        assert!(!sel.is_identity(4));
        let view = sel.gather_view(&col);
        assert!(matches!(view, ColumnView::Owned(_)));
        assert_eq!(&*view, sel.gather(&col).as_slice());
        assert_eq!(view.into_vec(), vec![2.0, 4.0]);
    }
}
