//! Typed columns and scalar values.

use crate::shared::Shared;
use std::fmt;

/// The data type of a [`Column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit float.
    F64,
    /// 64-bit signed integer.
    I64,
    /// Owned string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl DType {
    /// Lowercase type name.
    pub fn name(&self) -> &'static str {
        match self {
            DType::F64 => "f64",
            DType::I64 => "i64",
            DType::Str => "str",
            DType::Bool => "bool",
        }
    }
}

/// A scalar value extracted from a frame cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A float cell.
    F64(f64),
    /// An integer cell.
    I64(i64),
    /// A string cell.
    Str(String),
    /// A boolean cell.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A dense, typed column of values.
///
/// Float columns hold [`Shared`] storage: cloning an F64 column (or
/// building one from a store's `Shared` base column) is an `Arc` bump,
/// not a data copy, and mutation detaches via copy-on-write.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// A float column (shared, copy-on-write storage).
    F64(Shared<f64>),
    /// An integer column.
    I64(Vec<i64>),
    /// A string column.
    Str(Vec<String>),
    /// A boolean column.
    Bool(Vec<bool>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::F64(v) => v.len(),
            Column::I64(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::F64(_) => DType::F64,
            Column::I64(_) => DType::I64,
            Column::Str(_) => DType::Str,
            Column::Bool(_) => DType::Bool,
        }
    }

    /// Value at `row` (panics if out of bounds; frame-level APIs bound-check).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::F64(v) => Value::F64(v[row]),
            Column::I64(v) => Value::I64(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Bool(v) => Value::Bool(v[row]),
        }
    }

    /// Borrow as `&[f64]`, if this is an F64 column.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[i64]`, if this is an I64 column.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[String]`, if this is a Str column.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[bool]`, if this is a Bool column.
    pub fn as_bool(&self) -> Option<&[bool]> {
        match self {
            Column::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Gather rows by index into a new column. Indices must be in bounds.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::F64(v) => Column::F64(indices.iter().map(|&i| v[i]).collect()),
            Column::I64(v) => Column::I64(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// A grouping key for row `i`: strings for Str, canonical text otherwise.
    /// F64 keys use the bit pattern so `-0.0`/`0.0` and NaNs group stably.
    pub(crate) fn group_key(&self, row: usize) -> String {
        match self {
            Column::F64(v) => format!("f{:x}", v[row].to_bits()),
            Column::I64(v) => format!("i{}", v[row]),
            Column::Str(v) => format!("s{}", v[row]),
            Column::Bool(v) => format!("b{}", v[row]),
        }
    }

    /// Compare rows `a` and `b` within this column (ascending).
    pub(crate) fn cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self {
            Column::F64(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
            Column::I64(v) => v[a].cmp(&v[b]),
            Column::Str(v) => v[a].cmp(&v[b]),
            Column::Bool(v) => v[a].cmp(&v[b]),
        }
    }
}

impl From<Vec<f64>> for Column {
    fn from(v: Vec<f64>) -> Self {
        Column::F64(v.into())
    }
}

impl From<Shared<f64>> for Column {
    fn from(v: Shared<f64>) -> Self {
        Column::F64(v)
    }
}

impl From<Vec<i64>> for Column {
    fn from(v: Vec<i64>) -> Self {
        Column::I64(v)
    }
}

impl From<Vec<String>> for Column {
    fn from(v: Vec<String>) -> Self {
        Column::Str(v)
    }
}

impl From<Vec<&str>> for Column {
    fn from(v: Vec<&str>) -> Self {
        Column::Str(v.into_iter().map(str::to_owned).collect())
    }
}

impl From<Vec<bool>> for Column {
    fn from(v: Vec<bool>) -> Self {
        Column::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_and_len() {
        assert_eq!(Column::from(vec![1.0, 2.0]).dtype(), DType::F64);
        assert_eq!(Column::from(vec![1i64]).dtype(), DType::I64);
        assert_eq!(Column::from(vec!["a"]).dtype(), DType::Str);
        assert_eq!(Column::from(vec![true]).dtype(), DType::Bool);
        assert_eq!(Column::from(vec![1.0, 2.0, 3.0]).len(), 3);
        assert!(Column::F64(vec![].into()).is_empty());
    }

    #[test]
    fn take_gathers_and_repeats() {
        let c = Column::from(vec![10.0, 20.0, 30.0]);
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.as_f64().unwrap(), &[30.0, 10.0, 10.0]);
    }

    #[test]
    fn typed_borrows() {
        let c = Column::from(vec!["x", "y"]);
        assert!(c.as_f64().is_none());
        assert_eq!(c.as_str().unwrap()[1], "y");
    }

    #[test]
    fn values_round_trip_display() {
        assert_eq!(Value::F64(1.5).to_string(), "1.5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::I64(-3).to_string(), "-3");
    }

    #[test]
    fn group_keys_distinguish_types() {
        let f = Column::from(vec![1.0]);
        let i = Column::from(vec![1i64]);
        assert_ne!(f.group_key(0), i.group_key(0));
    }

    #[test]
    fn cmp_rows_orders_ascending() {
        let c = Column::from(vec![3.0, 1.0]);
        assert_eq!(c.cmp_rows(1, 0), std::cmp::Ordering::Less);
        let s = Column::from(vec!["b", "a"]);
        assert_eq!(s.cmp_rows(0, 1), std::cmp::Ordering::Greater);
    }
}
