//! Error type for data-frame operations.

use std::fmt;

/// Errors produced by [`crate::DataFrame`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameError {
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// A column with this name already exists.
    DuplicateColumn(String),
    /// Column length does not match the frame's row count.
    LengthMismatch {
        /// Offending column name.
        column: String,
        /// The frame's row count.
        expected: usize,
        /// The column's length.
        got: usize,
    },
    /// The column exists but has the wrong type for the operation.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Type the operation required.
        expected: &'static str,
        /// Type the column actually has.
        got: &'static str,
    },
    /// A mask's length does not match the row count.
    MaskLength {
        /// The frame's row count.
        expected: usize,
        /// The mask's length.
        got: usize,
    },
    /// A row index is out of bounds.
    IndexOutOfBounds {
        /// The rejected index.
        index: usize,
        /// The frame's row count.
        len: usize,
    },
    /// CSV parsing failed.
    Csv {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NoSuchColumn(name) => write!(f, "no such column: {name}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            FrameError::LengthMismatch { column, expected, got } => {
                write!(f, "column {column} has {got} rows, frame has {expected}")
            }
            FrameError::TypeMismatch { column, expected, got } => {
                write!(f, "column {column} is {got}, expected {expected}")
            }
            FrameError::MaskLength { expected, got } => {
                write!(f, "mask has {got} entries, frame has {expected} rows")
            }
            FrameError::IndexOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for {len} rows")
            }
            FrameError::Csv { line, message } => write!(f, "csv error on line {line}: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}
