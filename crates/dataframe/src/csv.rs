//! Minimal CSV import/export.
//!
//! Supports the subset needed here: comma separation, double-quote quoting
//! for string fields containing commas/quotes/newlines, header row required.
//! Import infers column types from the first data row (i64 → f64 → bool →
//! str, first parse that succeeds for *all* rows of the column wins).

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::Result;
use std::fmt::Write as _;

/// Serialize a frame to CSV text with a header row.
///
/// Errors instead of panicking if the frame is internally inconsistent
/// (a column shorter than `n_rows`, which a malformed `Column` edit can
/// produce) — export is an I/O boundary and must degrade, not abort.
pub fn to_csv(df: &DataFrame) -> Result<String> {
    let mut out = String::new();
    let names = df.names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in 0..df.n_rows() {
        let mut first = true;
        for name in names {
            if !first {
                out.push(',');
            }
            first = false;
            let cell = df.value(row, name)?.to_string();
            let _ = write!(out, "{}", quote(&cell));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parse CSV text into a frame. All columns are inferred.
pub fn from_csv(text: &str) -> Result<DataFrame> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.push(split_line(line, lineno + 1)?);
    }
    if rows.is_empty() {
        return Err(FrameError::Csv { line: 0, message: "no header row".into() });
    }
    let header = rows.remove(0);
    let n_cols = header.len();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != n_cols {
            return Err(FrameError::Csv {
                line: i + 2,
                message: format!("expected {n_cols} fields, got {}", row.len()),
            });
        }
    }

    let mut df = DataFrame::new();
    for (c, name) in header.into_iter().enumerate() {
        let cells: Vec<&str> = rows.iter().map(|r| r[c].as_str()).collect();
        df.add_column(name, infer_column(&cells))?;
    }
    Ok(df)
}

fn infer_column(cells: &[&str]) -> Column {
    if !cells.is_empty() {
        if let Some(v) = try_all(cells, |s| s.parse::<i64>().ok()) {
            return Column::I64(v);
        }
        if let Some(v) = try_all(cells, parse_f64) {
            return Column::F64(v.into());
        }
        if let Some(v) = try_all(cells, |s| match s {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }) {
            return Column::Bool(v);
        }
    }
    Column::Str(cells.iter().map(|s| s.to_string()).collect())
}

fn parse_f64(s: &str) -> Option<f64> {
    match s {
        "NaN" | "nan" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

fn try_all<T>(cells: &[&str], f: impl Fn(&str) -> Option<T>) -> Option<Vec<T>> {
    let mut out = Vec::with_capacity(cells.len());
    for &c in cells {
        out.push(f(c)?);
    }
    Some(out)
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn split_line(line: &str, lineno: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(ch),
            }
        } else {
            match ch {
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(FrameError::Csv {
                            line: lineno,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                _ => cur.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv { line: lineno, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_typed_frame() {
        let df = DataFrame::from_columns([
            ("down", Column::from(vec![25.5, 100.0])),
            ("tier", Column::from(vec![1i64, 2])),
            ("city", Column::from(vec!["A", "B"])),
            ("wifi", Column::from(vec![true, false])),
        ])
        .unwrap();
        let text = to_csv(&df).unwrap();
        let back = from_csv(&text).unwrap();
        assert_eq!(back.f64("down").unwrap(), df.f64("down").unwrap());
        assert_eq!(back.i64("tier").unwrap(), df.i64("tier").unwrap());
        assert_eq!(back.str("city").unwrap(), df.str("city").unwrap());
        assert_eq!(back.bool("wifi").unwrap(), df.bool("wifi").unwrap());
    }

    #[test]
    fn quoting_commas_and_quotes() {
        let df = DataFrame::from_columns([(
            "name",
            Column::from(vec!["plain", "has,comma", "has\"quote"]),
        )])
        .unwrap();
        let text = to_csv(&df).unwrap();
        let back = from_csv(&text).unwrap();
        assert_eq!(back.str("name").unwrap(), df.str("name").unwrap());
    }

    #[test]
    fn integers_prefer_i64_over_f64() {
        let back = from_csv("x\n1\n2\n").unwrap();
        assert!(back.i64("x").is_ok());
    }

    #[test]
    fn mixed_numeric_becomes_f64() {
        let back = from_csv("x\n1\n2.5\n").unwrap();
        assert_eq!(back.f64("x").unwrap(), &[1.0, 2.5]);
    }

    #[test]
    fn nan_round_trips() {
        let df = DataFrame::from_columns([("v", Column::from(vec![1.0, f64::NAN]))]).unwrap();
        let back = from_csv(&to_csv(&df).unwrap()).unwrap();
        let v = back.f64("v").unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan());
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(matches!(from_csv("a,b\n1,2\n3\n").unwrap_err(), FrameError::Csv { line: 3, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(from_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(from_csv("").is_err());
        assert!(from_csv("\n\n").is_err());
    }

    #[test]
    fn header_only_yields_empty_string_columns() {
        let df = from_csv("a,b\n").unwrap();
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 2);
    }
}
