//! Shared, copy-on-write column storage.
//!
//! A [`Shared`] vector is the zero-copy building block of the columnar
//! interop path (DESIGN.md §15): handing a `Shared<f64>` to a
//! [`crate::Column`] or a frame is an `Arc` bump, not a data clone, so
//! `CampaignStore::to_frame` and similar exports alias the store's base
//! columns instead of duplicating them per caller. Readers see a plain
//! `Vec` through `Deref`; the first writer through `DerefMut` gets a
//! private copy (`Arc::make_mut`), so aliased columns can never observe
//! each other's mutations.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An `Arc`-backed vector with copy-on-write mutation.
#[derive(Debug, Clone)]
pub struct Shared<T>(Arc<Vec<T>>);

impl<T> Shared<T> {
    /// Wrap an owned vector (no copy).
    pub fn new(v: Vec<T>) -> Self {
        Shared(Arc::new(v))
    }

    /// True when both handles alias the same allocation — the zero-copy
    /// assertion used by the store/frame tests.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T> Deref for Shared<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.0
    }
}

impl<T: Clone> DerefMut for Shared<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.0)
    }
}

impl<T> From<Vec<T>> for Shared<T> {
    fn from(v: Vec<T>) -> Self {
        Shared::new(v)
    }
}

impl<T> FromIterator<T> for Shared<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Shared::new(iter.into_iter().collect())
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl<T> Default for Shared<T> {
    fn default() -> Self {
        Shared::new(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_aliases_until_written() {
        let a = Shared::new(vec![1.0, 2.0, 3.0]);
        let mut b = a.clone();
        assert!(Shared::ptr_eq(&a, &b), "clone is an Arc bump");
        b.push(4.0); // copy-on-write detaches the writer
        assert!(!Shared::ptr_eq(&a, &b));
        assert_eq!(a.len(), 3, "reader unaffected by the write");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn reads_go_through_deref() {
        let s: Shared<f64> = vec![5.0, 7.0].into();
        assert_eq!(s[1], 7.0);
        assert_eq!(s.iter().sum::<f64>(), 12.0);
        let slice: &[f64] = &s;
        assert_eq!(slice, &[5.0, 7.0]);
    }

    #[test]
    fn equality_compares_contents() {
        let a: Shared<f64> = vec![1.0, 2.0].into();
        let b: Shared<f64> = vec![1.0, 2.0].into();
        assert_eq!(a, b);
        assert!(!Shared::ptr_eq(&a, &b));
    }
}
