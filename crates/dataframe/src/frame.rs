//! The [`DataFrame`] container and row-wise operations.

use crate::column::{Column, DType, Value};
use crate::error::FrameError;
use crate::groupby::GroupBy;
use crate::Result;

/// A schema-checked collection of equally-long named columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// An empty frame (no columns, no rows).
    pub fn new() -> Self {
        DataFrame::default()
    }

    /// Build a frame from `(name, column)` pairs, validating lengths and
    /// name uniqueness.
    pub fn from_columns<I, S>(cols: I) -> Result<Self>
    where
        I: IntoIterator<Item = (S, Column)>,
        S: Into<String>,
    {
        let mut df = DataFrame::new();
        for (name, col) in cols {
            df.add_column(name.into(), col)?;
        }
        Ok(df)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// True when the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Add a column; its length must match existing rows (any length is
    /// accepted for the first column).
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if !self.columns.is_empty() && col.len() != self.n_rows {
            return Err(FrameError::LengthMismatch {
                column: name,
                expected: self.n_rows,
                got: col.len(),
            });
        }
        if self.columns.is_empty() {
            self.n_rows = col.len();
        }
        self.names.push(name);
        self.columns.push(col);
        Ok(())
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_owned()))?;
        Ok(&self.columns[idx])
    }

    /// Borrow an f64 column by name, or fail with a type error.
    pub fn f64(&self, name: &str) -> Result<&[f64]> {
        let col = self.column(name)?;
        col.as_f64().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_owned(),
            expected: DType::F64.name(),
            got: col.dtype().name(),
        })
    }

    /// Borrow an i64 column by name, or fail with a type error.
    pub fn i64(&self, name: &str) -> Result<&[i64]> {
        let col = self.column(name)?;
        col.as_i64().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_owned(),
            expected: DType::I64.name(),
            got: col.dtype().name(),
        })
    }

    /// Borrow a string column by name, or fail with a type error.
    pub fn str(&self, name: &str) -> Result<&[String]> {
        let col = self.column(name)?;
        col.as_str().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_owned(),
            expected: DType::Str.name(),
            got: col.dtype().name(),
        })
    }

    /// Borrow a bool column by name, or fail with a type error.
    pub fn bool(&self, name: &str) -> Result<&[bool]> {
        let col = self.column(name)?;
        col.as_bool().ok_or_else(|| FrameError::TypeMismatch {
            column: name.to_owned(),
            expected: DType::Bool.name(),
            got: col.dtype().name(),
        })
    }

    /// Cell value at `(row, column)`.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        if row >= self.n_rows {
            return Err(FrameError::IndexOutOfBounds { index: row, len: self.n_rows });
        }
        Ok(self.column(name)?.value(row))
    }

    /// New frame keeping only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut df = DataFrame::new();
        for &name in names {
            df.add_column(name, self.column(name)?.clone())?;
        }
        Ok(df)
    }

    /// New frame keeping rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows {
            return Err(FrameError::MaskLength { expected: self.n_rows, got: mask.len() });
        }
        let indices: Vec<usize> =
            mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i).collect();
        Ok(self.take(&indices))
    }

    /// Build a boolean mask from a predicate over an f64 column.
    pub fn mask_f64(&self, name: &str, pred: impl Fn(f64) -> bool) -> Result<Vec<bool>> {
        Ok(self.f64(name)?.iter().map(|&v| pred(v)).collect())
    }

    /// Build a boolean mask from a predicate over a string column.
    pub fn mask_str(&self, name: &str, pred: impl Fn(&str) -> bool) -> Result<Vec<bool>> {
        Ok(self.str(name)?.iter().map(|v| pred(v)).collect())
    }

    /// Build a boolean mask from a predicate over an i64 column.
    pub fn mask_i64(&self, name: &str, pred: impl Fn(i64) -> bool) -> Result<Vec<bool>> {
        Ok(self.i64(name)?.iter().map(|&v| pred(v)).collect())
    }

    /// Elementwise AND of two masks.
    pub fn mask_and(a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| x && y).collect()
    }

    /// Elementwise OR of two masks.
    pub fn mask_or(a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter().zip(b).map(|(&x, &y)| x || y).collect()
    }

    /// Elementwise NOT of a mask.
    pub fn mask_not(a: &[bool]) -> Vec<bool> {
        a.iter().map(|&x| !x).collect()
    }

    /// New frame gathering the given row indices (indices may repeat).
    /// Panics if an index is out of bounds — callers produce indices from
    /// this frame's own row count.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        DataFrame { names: self.names.clone(), columns, n_rows: indices.len() }
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..n.min(self.n_rows)).collect();
        self.take(&indices)
    }

    /// New frame sorted ascending by the given key columns (stable).
    pub fn sort_by(&self, keys: &[&str]) -> Result<DataFrame> {
        let key_cols: Vec<&Column> = keys.iter().map(|k| self.column(k)).collect::<Result<_>>()?;
        let mut indices: Vec<usize> = (0..self.n_rows).collect();
        indices.sort_by(|&a, &b| {
            for col in &key_cols {
                let ord = col.cmp_rows(a, b);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&indices))
    }

    /// Start a group-by over the given key columns.
    pub fn group_by(&self, keys: &[&str]) -> Result<GroupBy<'_>> {
        GroupBy::new(self, keys)
    }

    /// Summary statistics of every numeric (f64) column: a new frame with
    /// one row per column and `count / mean / std / min / median / max`
    /// columns (NaNs skipped, pandas-style `describe`).
    pub fn describe(&self) -> DataFrame {
        let mut names = Vec::new();
        let (mut count, mut mean, mut std, mut min, mut median, mut max) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for name in &self.names {
            let Some(values) = self.column(name).expect("own name").as_f64() else {
                continue;
            };
            let mut clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
            names.push(name.clone());
            count.push(clean.len() as f64);
            if clean.is_empty() {
                for v in [&mut mean, &mut std, &mut min, &mut median, &mut max] {
                    v.push(f64::NAN);
                }
                continue;
            }
            let m = clean.iter().sum::<f64>() / clean.len() as f64;
            mean.push(m);
            std.push(
                (clean.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / clean.len() as f64).sqrt(),
            );
            clean.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
            min.push(clean[0]);
            median.push(clean[clean.len() / 2]);
            max.push(*clean.last().expect("non-empty"));
        }
        DataFrame::from_columns([
            ("column", Column::Str(names)),
            ("count", Column::F64(count.into())),
            ("mean", Column::F64(mean.into())),
            ("std", Column::F64(std.into())),
            ("min", Column::F64(min.into())),
            ("median", Column::F64(median.into())),
            ("max", Column::F64(max.into())),
        ])
        .expect("parallel construction")
    }

    /// Vertically concatenate another frame with an identical schema.
    pub fn vstack(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.columns.is_empty() {
            return Ok(other.clone());
        }
        if self.names != other.names {
            return Err(FrameError::NoSuchColumn(format!(
                "schema mismatch: {:?} vs {:?}",
                self.names, other.names
            )));
        }
        let mut out = self.clone();
        for (i, col) in out.columns.iter_mut().enumerate() {
            match (col, &other.columns[i]) {
                (Column::F64(a), Column::F64(b)) => a.extend_from_slice(b),
                (Column::I64(a), Column::I64(b)) => a.extend_from_slice(b),
                (Column::Str(a), Column::Str(b)) => a.extend_from_slice(b),
                (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
                (col, other_col) => {
                    return Err(FrameError::TypeMismatch {
                        column: self.names[i].clone(),
                        expected: col.dtype().name(),
                        got: other_col.dtype().name(),
                    })
                }
            }
        }
        out.n_rows += other.n_rows;
        Ok(out)
    }

    /// Internal: group key string for a row over several key columns.
    pub(crate) fn row_key(&self, row: usize, key_cols: &[&Column]) -> String {
        let mut key = String::new();
        for col in key_cols {
            key.push_str(&col.group_key(row));
            key.push('\u{1f}'); // unit separator — cannot collide with data
        }
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns([
            ("speed", Column::from(vec![25.0, 100.0, 200.0, 100.0])),
            ("tier", Column::from(vec![1i64, 2, 3, 2])),
            ("city", Column::from(vec!["A", "A", "B", "B"])),
            ("wifi", Column::from(vec![true, false, true, true])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 4);
        assert_eq!(df.names(), &["speed", "tier", "city", "wifi"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut df = sample();
        let err = df.add_column("speed", Column::from(vec![0.0; 4])).unwrap_err();
        assert!(matches!(err, FrameError::DuplicateColumn(_)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut df = sample();
        let err = df.add_column("extra", Column::from(vec![1.0])).unwrap_err();
        assert!(matches!(err, FrameError::LengthMismatch { .. }));
    }

    #[test]
    fn typed_accessors_enforce_types() {
        let df = sample();
        assert_eq!(df.f64("speed").unwrap()[0], 25.0);
        assert!(df.f64("city").is_err());
        assert_eq!(df.i64("tier").unwrap()[2], 3);
        assert_eq!(df.str("city").unwrap()[3], "B");
        assert!(!df.bool("wifi").unwrap()[1]);
        assert!(df.column("nope").is_err());
    }

    #[test]
    fn filter_by_mask() {
        let df = sample();
        let mask = df.mask_str("city", |c| c == "A").unwrap();
        let a = df.filter(&mask).unwrap();
        assert_eq!(a.n_rows(), 2);
        assert_eq!(a.f64("speed").unwrap(), &[25.0, 100.0]);
    }

    #[test]
    fn combined_masks() {
        let df = sample();
        let fast = df.mask_f64("speed", |v| v >= 100.0).unwrap();
        let wifi = df.bool("wifi").unwrap().to_vec();
        let both = DataFrame::mask_and(&fast, &wifi);
        let out = df.filter(&both).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.f64("speed").unwrap(), &[200.0, 100.0]);
        let either = DataFrame::mask_or(&fast, &wifi);
        assert_eq!(either.iter().filter(|&&b| b).count(), 4);
        assert_eq!(DataFrame::mask_not(&[true, false]), vec![false, true]);
    }

    #[test]
    fn mask_length_checked() {
        let df = sample();
        assert!(matches!(df.filter(&[true]).unwrap_err(), FrameError::MaskLength { .. }));
    }

    #[test]
    fn select_projects_columns() {
        let df = sample().select(&["city", "speed"]).unwrap();
        assert_eq!(df.names(), &["city", "speed"]);
        assert_eq!(df.n_rows(), 4);
        assert!(sample().select(&["missing"]).is_err());
    }

    #[test]
    fn take_and_head() {
        let df = sample();
        let t = df.take(&[3, 0]);
        assert_eq!(t.f64("speed").unwrap(), &[100.0, 25.0]);
        assert_eq!(df.head(2).n_rows(), 2);
        assert_eq!(df.head(100).n_rows(), 4);
    }

    #[test]
    fn sort_by_single_and_multi_key() {
        let df = sample();
        let by_speed = df.sort_by(&["speed"]).unwrap();
        assert_eq!(by_speed.f64("speed").unwrap(), &[25.0, 100.0, 100.0, 200.0]);
        // multi-key: city then speed descending? (ascending only; verify order)
        let multi = df.sort_by(&["city", "speed"]).unwrap();
        assert_eq!(multi.str("city").unwrap(), &["A", "A", "B", "B"]);
        assert_eq!(multi.f64("speed").unwrap(), &[25.0, 100.0, 100.0, 200.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let df = sample();
        let both = df.vstack(&df).unwrap();
        assert_eq!(both.n_rows(), 8);
        assert_eq!(both.f64("speed").unwrap()[4], 25.0);
    }

    #[test]
    fn vstack_schema_mismatch_rejected() {
        let df = sample();
        let other = df.select(&["speed"]).unwrap();
        assert!(df.vstack(&other).is_err());
    }

    #[test]
    fn value_accessor_bounds_checked() {
        let df = sample();
        assert_eq!(df.value(0, "city").unwrap(), Value::Str("A".into()));
        assert!(df.value(10, "city").is_err());
    }

    #[test]
    fn describe_summarizes_numeric_columns() {
        let df = sample();
        let d = df.describe();
        assert_eq!(d.n_rows(), 1); // only "speed" is f64
        assert_eq!(d.str("column").unwrap(), &["speed"]);
        assert_eq!(d.f64("count").unwrap()[0], 4.0);
        assert_eq!(d.f64("mean").unwrap()[0], 106.25);
        assert_eq!(d.f64("min").unwrap()[0], 25.0);
        assert_eq!(d.f64("max").unwrap()[0], 200.0);
    }

    #[test]
    fn describe_skips_nans_and_handles_all_nan_columns() {
        let df = DataFrame::from_columns([
            ("x", Column::from(vec![1.0, f64::NAN, 3.0])),
            ("y", Column::from(vec![f64::NAN, f64::NAN, f64::NAN])),
        ])
        .unwrap();
        let d = df.describe();
        assert_eq!(d.f64("count").unwrap(), &[2.0, 0.0]);
        assert_eq!(d.f64("mean").unwrap()[0], 2.0);
        assert!(d.f64("mean").unwrap()[1].is_nan());
    }

    #[test]
    fn empty_frame_behaviour() {
        let df = DataFrame::new();
        assert!(df.is_empty());
        assert_eq!(df.n_cols(), 0);
        let stacked = df.vstack(&sample()).unwrap();
        assert_eq!(stacked.n_rows(), 4);
    }
}
