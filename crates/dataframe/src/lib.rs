#![warn(missing_docs)]
//! A small typed columnar data-frame.
//!
//! The paper's analyses are pandas/polars-style pipelines over ~1.5M
//! measurement rows: filter by platform, group by tier, aggregate medians.
//! No such tooling is available offline in Rust, so this crate provides the
//! minimal substrate those pipelines need:
//!
//! * typed columns ([`Column`]: `f64`, `i64`, `String`, `bool`),
//! * a [`DataFrame`] with schema-checked construction,
//! * boolean-mask filtering and row selection,
//! * group-by with the aggregations the paper uses (count, mean, median,
//!   quantile, min, max, sum),
//! * inner/left joins on a key column (measurements × per-user tables),
//! * stable multi-key sorting, and
//! * CSV import/export for interop with external plotting.
//!
//! Design note: columns are dense (no null bitmap). Missing numeric data is
//! represented as `f64::NAN` and aggregations skip NaNs explicitly, which is
//! the same contract the paper's Python stack uses by default.

pub mod column;
pub mod csv;
pub mod error;
pub mod frag;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod selection;
pub mod shared;

pub use column::{Column, DType, Value};
pub use error::FrameError;
pub use frag::{FragCol, FragSelection};
pub use frame::DataFrame;
pub use groupby::{Agg, GroupBy};
pub use join::{join, JoinKind};
pub use selection::ColumnView;
pub use selection::Selection;
pub use shared::Shared;

/// Result alias for data-frame operations.
pub type Result<T> = std::result::Result<T, FrameError>;
