//! Fragmented columns and selections: segment-aware views over a store
//! whose rows live in several consecutive column fragments.
//!
//! A segmented store (sealed immutable segments plus a mutable tail)
//! cannot hand out one contiguous `&[f64]` per column — each sealed
//! segment owns its own slice. [`FragCol`] chains those per-segment
//! slices into one logical column without copying, and
//! [`FragSelection`] composes per-segment [`Selection`]s into one
//! logical row set with *global* (whole-store) indices. Gathers walk
//! the fragments in order, so iteration order — and therefore every
//! downstream statistic — is identical to the single-slice code path.
//!
//! The single-fragment case (a batch-built store with exactly one
//! sealed segment) stays zero-copy end to end: [`FragCol::view`]
//! borrows the fragment outright and [`FragSelection::gather_view`]
//! borrows it for identity selections, exactly like
//! [`Selection::gather_view`] did on a monolithic store.

use std::borrow::Cow;

use crate::selection::{ColumnView, Selection};

/// One logical column chained from per-segment fragments.
///
/// Fragments are borrowed slices in segment order; `offsets[k]` is the
/// global row index of fragment `k`'s first row (with a trailing total
/// length, so `offsets.len() == fragments.len() + 1`).
#[derive(Debug, Clone)]
pub struct FragCol<'a, T> {
    frags: Vec<&'a [T]>,
    offsets: Vec<usize>,
}

impl<'a, T> FragCol<'a, T> {
    /// Chain `frags` (in segment order) into one logical column.
    pub fn new(frags: Vec<&'a [T]>) -> Self {
        let mut offsets = Vec::with_capacity(frags.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for f in &frags {
            total += f.len();
            offsets.push(total);
        }
        FragCol { frags, offsets }
    }

    /// Total rows across all fragments.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying fragments, in segment order.
    pub fn fragments(&self) -> &[&'a [T]] {
        &self.frags
    }

    /// Global row offset of each fragment (trailing entry = total rows).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The whole column as a single borrowed slice, when it is one —
    /// zero or one fragments. `None` means rows genuinely span
    /// fragment boundaries.
    pub fn as_single(&self) -> Option<&'a [T]> {
        match self.frags.len() {
            0 => Some(&[]),
            1 => Some(self.frags[0]),
            _ => None,
        }
    }

    /// The element at global row `i`.
    ///
    /// # Panics
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        if self.frags.len() == 1 {
            return self.frags[0][i];
        }
        let k = self.offsets.partition_point(|&o| o <= i) - 1;
        self.frags[k][i - self.offsets[k]]
    }

    /// Iterate every element in global row order.
    pub fn iter(&self) -> impl Iterator<Item = &'a T> + '_ {
        self.frags.iter().flat_map(|f| f.iter())
    }

    /// Copy the column into one contiguous `Vec`, fragment by fragment.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.len());
        for f in &self.frags {
            out.extend_from_slice(f);
        }
        out
    }

    /// The column as one contiguous slice: borrowed when there is a
    /// single fragment, copied only when rows span fragments.
    pub fn contiguous(&self) -> Cow<'a, [T]>
    where
        T: Clone,
    {
        match self.as_single() {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned(self.to_vec()),
        }
    }
}

impl<'a> FragCol<'a, f64> {
    /// The column as a [`ColumnView`]: borrowed for a single fragment,
    /// materialized only when rows span fragments — the segmented
    /// analogue of an identity [`Selection::gather_view`].
    pub fn view(&self) -> ColumnView<'a> {
        match self.as_single() {
            Some(s) => ColumnView::Borrowed(s),
            None => ColumnView::Owned(self.to_vec()),
        }
    }
}

/// One logical row set over a segmented store: one [`Selection`] per
/// segment (local indices) plus the segment offsets that lift them to
/// global row indices.
///
/// Parts may borrow a segment's memoized selection (`Cow::Borrowed`) or
/// own a derived one (`Cow::Owned`); either way indices stay ascending
/// per part, and parts are in segment order, so [`FragSelection::iter`]
/// yields globally ascending row indices — the invariant every
/// downstream gather relies on.
#[derive(Debug, Clone)]
pub struct FragSelection<'a> {
    parts: Vec<Cow<'a, Selection>>,
    offsets: Vec<usize>,
}

impl<'a> FragSelection<'a> {
    /// Assemble from per-segment parts and the segment lengths (in
    /// segment order; `parts.len()` must equal `seg_lens.len()`).
    pub fn from_parts(parts: Vec<Cow<'a, Selection>>, seg_lens: &[usize]) -> Self {
        assert_eq!(parts.len(), seg_lens.len(), "one selection part per segment");
        let mut offsets = Vec::with_capacity(seg_lens.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &l in seg_lens {
            total += l;
            offsets.push(total);
        }
        FragSelection { parts, offsets }
    }

    /// Evaluate `pred` over global row indices `0..sum(seg_lens)`,
    /// producing one owned part per segment.
    pub fn from_pred(seg_lens: &[usize], mut pred: impl FnMut(usize) -> bool) -> FragSelection<'a> {
        let mut parts = Vec::with_capacity(seg_lens.len());
        let mut off = 0usize;
        for &l in seg_lens {
            parts.push(Cow::Owned(Selection::from_pred(l, |i| pred(i + off))));
            off += l;
        }
        Self::from_parts(parts, seg_lens)
    }

    /// Number of selected rows across all segments.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// The per-segment parts, in segment order (local indices).
    pub fn parts(&self) -> &[Cow<'a, Selection>] {
        &self.parts
    }

    /// The part covering segment `k`.
    pub fn part(&self, k: usize) -> &Selection {
        &self.parts[k]
    }

    /// Global row offset of each segment (trailing entry = total rows).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Iterate selected rows as *global* indices, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.parts
            .iter()
            .zip(self.offsets.iter())
            .flat_map(|(p, &off)| p.iter().map(move |i| i + off))
    }

    /// Keep only selected rows for which `pred(global_row)` holds.
    pub fn refine(&self, mut pred: impl FnMut(usize) -> bool) -> FragSelection<'a> {
        let parts = self
            .parts
            .iter()
            .zip(self.offsets.iter())
            .map(|(p, &off)| Cow::Owned(p.refine(|i| pred(i + off))))
            .collect();
        FragSelection { parts, offsets: self.offsets.clone() }
    }

    /// Part-wise set intersection. Both selections must cover the same
    /// segmentation (equal offsets).
    pub fn and(&self, other: &FragSelection<'_>) -> FragSelection<'a> {
        debug_assert_eq!(self.offsets, other.offsets, "selections must share one segmentation");
        let parts =
            self.parts.iter().zip(&other.parts).map(|(a, b)| Cow::Owned(a.and(b))).collect();
        FragSelection { parts, offsets: self.offsets.clone() }
    }

    /// Gather `col` through this selection in global row order. `col`
    /// must share the segmentation (one fragment per part).
    pub fn gather(&self, col: &FragCol<'_, f64>) -> Vec<f64> {
        debug_assert_eq!(self.offsets, col.offsets, "column must share the segmentation");
        let mut out = Vec::with_capacity(self.len());
        for (p, frag) in self.parts.iter().zip(col.fragments()) {
            out.extend(p.iter().map(|i| frag[i]));
        }
        out
    }

    /// Gather `col` through this selection, dropping non-finite values
    /// (the segmented analogue of [`Selection::gather_finite`]).
    pub fn gather_finite(&self, col: &FragCol<'_, f64>) -> Vec<f64> {
        debug_assert_eq!(self.offsets, col.offsets, "column must share the segmentation");
        let mut out = Vec::new();
        for (p, frag) in self.parts.iter().zip(col.fragments()) {
            out.extend(p.iter().map(|i| frag[i]).filter(|v| v.is_finite()));
        }
        out
    }

    /// Gather without copying when possible: a single-part identity
    /// selection over a single-fragment column borrows the fragment;
    /// everything else materializes exactly as [`FragSelection::gather`].
    pub fn gather_view(&self, col: &FragCol<'a, f64>) -> ColumnView<'a> {
        if self.parts.len() == 1 && col.fragments().len() == 1 {
            let frag = col.fragments()[0];
            if self.parts[0].is_identity(frag.len()) {
                return ColumnView::Borrowed(frag);
            }
        }
        ColumnView::Owned(self.gather(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col<'a>(frags: Vec<&'a [f64]>) -> FragCol<'a, f64> {
        FragCol::new(frags)
    }

    #[test]
    fn chained_column_matches_concatenation() {
        let (a, b, c) = ([1.0, 2.0], [3.0], [4.0, 5.0, 6.0]);
        let fc = col(vec![&a, &b, &c]);
        assert_eq!(fc.len(), 6);
        assert_eq!(fc.offsets(), &[0, 2, 3, 6]);
        assert!(fc.as_single().is_none());
        let flat: Vec<f64> = fc.iter().copied().collect();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(fc.to_vec(), flat);
        for (i, want) in flat.iter().enumerate() {
            assert_eq!(fc.get(i), *want, "get({i})");
        }
        assert!(matches!(fc.view(), ColumnView::Owned(_)));
        assert!(matches!(fc.contiguous(), Cow::Owned(_)));
    }

    #[test]
    fn single_fragment_stays_borrowed() {
        let a = [1.0, 2.0, 3.0];
        let fc = col(vec![&a]);
        assert_eq!(fc.as_single(), Some(&a[..]));
        let view = fc.view();
        assert!(matches!(view, ColumnView::Borrowed(s) if std::ptr::eq(s.as_ptr(), a.as_ptr())));
        match fc.contiguous() {
            Cow::Borrowed(s) => assert!(std::ptr::eq(s.as_ptr(), a.as_ptr())),
            Cow::Owned(_) => panic!("single fragment must not copy"),
        }
    }

    #[test]
    fn empty_column_is_single_and_empty() {
        let fc: FragCol<'_, f64> = FragCol::new(Vec::new());
        assert_eq!(fc.len(), 0);
        assert!(fc.is_empty());
        assert_eq!(fc.as_single(), Some(&[][..]));
    }

    fn fsel<'a>(parts: Vec<Selection>, lens: &[usize]) -> FragSelection<'a> {
        FragSelection::from_parts(parts.into_iter().map(Cow::Owned).collect(), lens)
    }

    #[test]
    fn iter_yields_global_ascending_indices() {
        let s = fsel(
            vec![
                Selection::from_sorted(vec![0, 2]),
                Selection::empty(),
                Selection::from_sorted(vec![1]),
            ],
            &[3, 2, 2],
        );
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let global: Vec<usize> = s.iter().collect();
        assert_eq!(global, vec![0, 2, 6]);
    }

    #[test]
    fn from_pred_sees_global_indices() {
        let s = FragSelection::from_pred(&[2, 3], |i| i % 2 == 0);
        let global: Vec<usize> = s.iter().collect();
        assert_eq!(global, vec![0, 2, 4]);
        assert_eq!(s.part(0).indices(), &[0]);
        assert_eq!(s.part(1).indices(), &[0, 2]);
    }

    #[test]
    fn gather_walks_fragments_in_order() {
        let (a, b) = ([1.0, f64::NAN, 3.0], [4.0, 5.0]);
        let fc = col(vec![&a, &b]);
        let s = fsel(
            vec![Selection::from_sorted(vec![0, 1]), Selection::from_sorted(vec![1])],
            &[3, 2],
        );
        assert_eq!(s.gather(&fc).len(), 3);
        assert_eq!(s.gather_finite(&fc), vec![1.0, 5.0]);
        assert!(matches!(s.gather_view(&fc), ColumnView::Owned(_)));
    }

    #[test]
    fn identity_gather_view_borrows_single_fragment() {
        let a = [1.0, 2.0, 3.0];
        let fc = col(vec![&a]);
        let s = fsel(vec![Selection::all(3)], &[3]);
        let view = s.gather_view(&fc);
        assert!(matches!(view, ColumnView::Borrowed(s) if std::ptr::eq(s.as_ptr(), a.as_ptr())));
    }

    #[test]
    fn refine_and_and_compose_per_segment() {
        let evens = FragSelection::from_pred(&[3, 3], |i| i % 2 == 0); // 0 2 4
        let refined = evens.refine(|i| i > 0); // 2 4
        assert_eq!(refined.iter().collect::<Vec<_>>(), vec![2, 4]);
        let low = FragSelection::from_pred(&[3, 3], |i| i < 4); // 0..4
        let both = refined.and(&low);
        assert_eq!(both.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn fragmented_gather_equals_monolithic_gather() {
        // The equivalence the segmented store relies on: any split of a
        // column into consecutive fragments gathers identically to the
        // monolithic slice.
        let data: Vec<f64> = (0..17).map(|i| i as f64 * 1.5).collect();
        let mono_sel = Selection::from_pred(data.len(), |i| i % 3 != 1);
        let want = mono_sel.gather(&data);
        for split in [1usize, 2, 5, 16, 17] {
            let mut frags: Vec<&[f64]> = Vec::new();
            let mut lens = Vec::new();
            let mut at = 0;
            while at < data.len() {
                let end = (at + split).min(data.len());
                frags.push(&data[at..end]);
                lens.push(end - at);
                at = end;
            }
            let fc = FragCol::new(frags);
            let fs = FragSelection::from_pred(&lens, |i| i % 3 != 1);
            assert_eq!(fs.gather(&fc), want, "split {split}");
            assert_eq!(fs.iter().collect::<Vec<_>>(), mono_sel.iter().collect::<Vec<_>>());
        }
    }
}
