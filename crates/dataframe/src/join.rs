//! Inner and left joins on a single key column.
//!
//! Needed for user-level analyses: joining a measurement frame against a
//! per-user table (plan truth, home metadata) is how the §4.1 consistency
//! and §5.2 α pipelines read in a frame-first style.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::Result;
use std::collections::HashMap;

/// How unmatched left rows are handled by [`join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows whose key appears in both frames.
    Inner,
    /// Keep all left rows; unmatched right cells become NaN / -1 / "" /
    /// false (the frame has no null representation).
    Left,
}

/// Join `left` and `right` on the named key column (same name and type on
/// both sides). Right columns keep their names; a right column whose name
/// collides with a left column is suffixed `_right`. When a right key
/// appears on multiple rows, the *first* occurrence wins (lookup-table
/// semantics — build the right frame accordingly).
pub fn join(left: &DataFrame, right: &DataFrame, key: &str, kind: JoinKind) -> Result<DataFrame> {
    let lk = left.column(key)?;
    let rk = right.column(key)?;
    if lk.dtype() != rk.dtype() {
        return Err(FrameError::TypeMismatch {
            column: key.to_owned(),
            expected: lk.dtype().name(),
            got: rk.dtype().name(),
        });
    }

    // Index right rows by key (first occurrence wins).
    let mut index: HashMap<String, usize> = HashMap::new();
    for row in 0..right.n_rows() {
        index.entry(rk.group_key(row)).or_insert(row);
    }

    // Row pairing.
    let mut left_rows = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    for row in 0..left.n_rows() {
        match index.get(&lk.group_key(row)) {
            Some(&r) => {
                left_rows.push(row);
                right_rows.push(Some(r));
            }
            None if kind == JoinKind::Left => {
                left_rows.push(row);
                right_rows.push(None);
            }
            None => {}
        }
    }

    let mut out = left.take(&left_rows);
    for (name, col) in right.names().iter().zip(right_columns(right)) {
        if name == key {
            continue;
        }
        let out_name = if out.names().iter().any(|n| n == name) {
            format!("{name}_right")
        } else {
            name.clone()
        };
        out.add_column(out_name, gather_with_missing(col, &right_rows))?;
    }
    Ok(out)
}

fn right_columns(df: &DataFrame) -> Vec<&Column> {
    df.names().iter().map(|n| df.column(n).expect("name from the frame itself")).collect()
}

/// Gather `col[rows[i]]`, filling missing rows with the type's sentinel.
fn gather_with_missing(col: &Column, rows: &[Option<usize>]) -> Column {
    match col {
        Column::F64(v) => Column::F64(rows.iter().map(|r| r.map_or(f64::NAN, |i| v[i])).collect()),
        Column::I64(v) => Column::I64(rows.iter().map(|r| r.map_or(-1, |i| v[i])).collect()),
        Column::Str(v) => {
            Column::Str(rows.iter().map(|r| r.map_or_else(String::new, |i| v[i].clone())).collect())
        }
        Column::Bool(v) => Column::Bool(rows.iter().map(|r| r.is_some_and(|i| v[i])).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tests_frame() -> DataFrame {
        DataFrame::from_columns([
            ("user_id", Column::from(vec![1i64, 2, 1, 3])),
            ("down", Column::from(vec![100.0, 25.0, 95.0, 400.0])),
        ])
        .unwrap()
    }

    fn users_frame() -> DataFrame {
        DataFrame::from_columns([
            ("user_id", Column::from(vec![1i64, 2])),
            ("tier", Column::from(vec![2i64, 1])),
            ("down", Column::from(vec![100.0, 25.0])), // colliding name
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_keeps_matches_only() {
        let j = join(&tests_frame(), &users_frame(), "user_id", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 3); // user 3 dropped
        assert_eq!(j.i64("user_id").unwrap(), &[1, 2, 1]);
        assert_eq!(j.i64("tier").unwrap(), &[2, 1, 2]);
    }

    #[test]
    fn left_join_fills_sentinels() {
        let j = join(&tests_frame(), &users_frame(), "user_id", JoinKind::Left).unwrap();
        assert_eq!(j.n_rows(), 4);
        assert_eq!(j.i64("tier").unwrap(), &[2, 1, 2, -1]);
    }

    #[test]
    fn colliding_columns_are_suffixed() {
        let j = join(&tests_frame(), &users_frame(), "user_id", JoinKind::Inner).unwrap();
        assert!(j.names().iter().any(|n| n == "down"));
        assert!(j.names().iter().any(|n| n == "down_right"));
        assert_eq!(j.f64("down_right").unwrap(), &[100.0, 25.0, 100.0]);
    }

    #[test]
    fn duplicate_right_keys_use_first_occurrence() {
        let right = DataFrame::from_columns([
            ("user_id", Column::from(vec![1i64, 1])),
            ("tier", Column::from(vec![5i64, 9])),
        ])
        .unwrap();
        let j = join(&tests_frame(), &right, "user_id", JoinKind::Inner).unwrap();
        assert!(j.i64("tier").unwrap().iter().all(|&t| t == 5));
    }

    #[test]
    fn string_keys_work() {
        let left = DataFrame::from_columns([
            ("city", Column::from(vec!["A", "B", "A"])),
            ("v", Column::from(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let right = DataFrame::from_columns([
            ("city", Column::from(vec!["A"])),
            ("isp", Column::from(vec!["ISP-A"])),
        ])
        .unwrap();
        let j = join(&left, &right, "city", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(j.str("isp").unwrap(), &["ISP-A", "ISP-A"]);
    }

    #[test]
    fn key_type_mismatch_rejected() {
        let right = DataFrame::from_columns([
            ("user_id", Column::from(vec!["1", "2"])),
            ("x", Column::from(vec![0.0, 0.0])),
        ])
        .unwrap();
        assert!(matches!(
            join(&tests_frame(), &right, "user_id", JoinKind::Inner).unwrap_err(),
            FrameError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn missing_key_column_rejected() {
        assert!(join(&tests_frame(), &users_frame(), "nope", JoinKind::Inner).is_err());
    }

    #[test]
    fn empty_right_inner_join_is_empty() {
        let right = DataFrame::from_columns([
            ("user_id", Column::I64(vec![])),
            ("tier", Column::I64(vec![])),
        ])
        .unwrap();
        let j = join(&tests_frame(), &right, "user_id", JoinKind::Inner).unwrap();
        assert_eq!(j.n_rows(), 0);
        assert!(j.names().iter().any(|n| n == "tier"));
    }
}
