//! Group-by and aggregation.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::Result;
use std::collections::HashMap;

/// An aggregation over an f64 column within each group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Agg {
    /// Number of non-NaN values.
    Count,
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Median.
    Median,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Linearly-interpolated quantile, `0.0..=1.0`.
    Quantile(f64),
    /// Standard deviation (population).
    Std,
}

impl Agg {
    /// Column-name suffix for the output frame.
    fn suffix(&self) -> String {
        match self {
            Agg::Count => "count".into(),
            Agg::Sum => "sum".into(),
            Agg::Mean => "mean".into(),
            Agg::Median => "median".into(),
            Agg::Min => "min".into(),
            Agg::Max => "max".into(),
            Agg::Quantile(q) => format!("q{}", (q * 100.0).round() as u32),
            Agg::Std => "std".into(),
        }
    }

    /// Apply to a group's values; NaNs are skipped (pandas semantics).
    fn apply(&self, values: &[f64]) -> f64 {
        let clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if clean.is_empty() {
            return if matches!(self, Agg::Count) { 0.0 } else { f64::NAN };
        }
        match self {
            Agg::Count => clean.len() as f64,
            Agg::Sum => clean.iter().sum(),
            Agg::Mean => clean.iter().sum::<f64>() / clean.len() as f64,
            Agg::Median => sorted_quantile(clean, 0.5),
            Agg::Min => clean.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => clean.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Quantile(q) => sorted_quantile(clean, q.clamp(0.0, 1.0)),
            Agg::Std => {
                let m = clean.iter().sum::<f64>() / clean.len() as f64;
                (clean.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / clean.len() as f64).sqrt()
            }
        }
    }
}

fn sorted_quantile(mut v: Vec<f64>, q: f64) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let n = v.len();
    if n == 1 {
        return v[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
}

/// A lazily-evaluated grouping of a frame by one or more key columns.
#[derive(Debug)]
pub struct GroupBy<'a> {
    frame: &'a DataFrame,
    keys: Vec<String>,
    /// Group label (first row index) → member row indices, in first-seen order.
    groups: Vec<(usize, Vec<usize>)>,
}

impl<'a> GroupBy<'a> {
    pub(crate) fn new(frame: &'a DataFrame, keys: &[&str]) -> Result<Self> {
        if keys.is_empty() {
            return Err(FrameError::NoSuchColumn("<empty key list>".into()));
        }
        let key_cols: Vec<&Column> = keys.iter().map(|k| frame.column(k)).collect::<Result<_>>()?;
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for row in 0..frame.n_rows() {
            let key = frame.row_key(row, &key_cols);
            match index.get(&key) {
                Some(&g) => groups[g].1.push(row),
                None => {
                    index.insert(key, groups.len());
                    groups.push((row, vec![row]));
                }
            }
        }
        Ok(GroupBy { frame, keys: keys.iter().map(|s| s.to_string()).collect(), groups })
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(representative_row, member_rows)` per group.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.groups.iter().map(|(rep, rows)| (*rep, rows.as_slice()))
    }

    /// Materialize each group as its own frame, tagged by representative row.
    pub fn frames(&self) -> Vec<DataFrame> {
        self.groups.iter().map(|(_, rows)| self.frame.take(rows)).collect()
    }

    /// Aggregate: for each group emit the key columns plus one output column
    /// per `(value_column, agg)` pair, named `"{column}_{agg}"`.
    pub fn agg(&self, specs: &[(&str, Agg)]) -> Result<DataFrame> {
        // Validate value columns upfront.
        for (col, _) in specs {
            self.frame.f64(col)?;
        }
        let mut out = DataFrame::new();

        // Key columns: representative row values per group.
        let reps: Vec<usize> = self.groups.iter().map(|(rep, _)| *rep).collect();
        for key in &self.keys {
            out.add_column(key.clone(), self.frame.column(key)?.take(&reps))?;
        }

        for (col_name, agg) in specs {
            let values = self.frame.f64(col_name)?;
            let agg_vals: Vec<f64> = self
                .groups
                .iter()
                .map(|(_, rows)| {
                    let group_vals: Vec<f64> = rows.iter().map(|&r| values[r]).collect();
                    agg.apply(&group_vals)
                })
                .collect();
            out.add_column(format!("{col_name}_{}", agg.suffix()), Column::F64(agg_vals.into()))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns([
            ("tier", Column::from(vec![1i64, 1, 2, 2, 2])),
            ("city", Column::from(vec!["A", "A", "A", "B", "B"])),
            ("down", Column::from(vec![20.0, 30.0, 100.0, 120.0, 80.0])),
            ("up", Column::from(vec![5.0, 5.0, 10.0, 10.0, f64::NAN])),
        ])
        .unwrap()
    }

    #[test]
    fn groups_preserve_first_seen_order() {
        let df = sample();
        let gb = df.group_by(&["tier"]).unwrap();
        assert_eq!(gb.n_groups(), 2);
        let sizes: Vec<usize> = gb.iter().map(|(_, rows)| rows.len()).collect();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn multi_key_grouping() {
        let df = sample();
        let gb = df.group_by(&["tier", "city"]).unwrap();
        assert_eq!(gb.n_groups(), 3); // (1,A), (2,A), (2,B)
    }

    #[test]
    fn agg_mean_and_count() {
        let df = sample();
        let out = df
            .group_by(&["tier"])
            .unwrap()
            .agg(&[("down", Agg::Mean), ("down", Agg::Count)])
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.i64("tier").unwrap(), &[1, 2]);
        assert_eq!(out.f64("down_mean").unwrap(), &[25.0, 100.0]);
        assert_eq!(out.f64("down_count").unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn agg_median_min_max_sum_std() {
        let df = sample();
        let out = df
            .group_by(&["tier"])
            .unwrap()
            .agg(&[
                ("down", Agg::Median),
                ("down", Agg::Min),
                ("down", Agg::Max),
                ("down", Agg::Sum),
                ("down", Agg::Std),
            ])
            .unwrap();
        assert_eq!(out.f64("down_median").unwrap(), &[25.0, 100.0]);
        assert_eq!(out.f64("down_min").unwrap(), &[20.0, 80.0]);
        assert_eq!(out.f64("down_max").unwrap(), &[30.0, 120.0]);
        assert_eq!(out.f64("down_sum").unwrap(), &[50.0, 300.0]);
        assert_eq!(out.f64("down_std").unwrap()[0], 5.0);
    }

    #[test]
    fn nans_are_skipped() {
        let df = sample();
        let out =
            df.group_by(&["tier"]).unwrap().agg(&[("up", Agg::Mean), ("up", Agg::Count)]).unwrap();
        // tier 2 has up = [10, 10, NaN] → mean 10, count 2
        assert_eq!(out.f64("up_mean").unwrap()[1], 10.0);
        assert_eq!(out.f64("up_count").unwrap()[1], 2.0);
    }

    #[test]
    fn all_nan_group_aggregates_to_nan() {
        let df = DataFrame::from_columns([
            ("k", Column::from(vec![1i64, 1])),
            ("v", Column::from(vec![f64::NAN, f64::NAN])),
        ])
        .unwrap();
        let out = df.group_by(&["k"]).unwrap().agg(&[("v", Agg::Mean), ("v", Agg::Count)]).unwrap();
        assert!(out.f64("v_mean").unwrap()[0].is_nan());
        assert_eq!(out.f64("v_count").unwrap()[0], 0.0);
    }

    #[test]
    fn quantile_agg() {
        let df = sample();
        let out = df.group_by(&["tier"]).unwrap().agg(&[("down", Agg::Quantile(0.95))]).unwrap();
        let q = out.f64("down_q95").unwrap();
        assert!(q[1] > 100.0 && q[1] <= 120.0);
    }

    #[test]
    fn group_frames_materialize() {
        let df = sample();
        let frames = df.group_by(&["city"]).unwrap().frames();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].n_rows(), 3);
        assert_eq!(frames[1].n_rows(), 2);
    }

    #[test]
    fn bad_keys_and_values_rejected() {
        let df = sample();
        assert!(df.group_by(&["missing"]).is_err());
        assert!(df.group_by(&[]).is_err());
        assert!(df.group_by(&["tier"]).unwrap().agg(&[("city", Agg::Mean)]).is_err());
    }
}
