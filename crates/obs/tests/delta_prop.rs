//! Property tests pinning the snapshot delta algebra — the inverse of
//! merge that backs the st-serve `watch` verb (DESIGN.md §19). Three
//! contracts: `delta(a, merge(a, b))` recovers `b` on counters,
//! deltas never go negative (subtraction saturates even on snapshot
//! pairs that are not a merge pair), and delta + merge round-trips the
//! newer snapshot byte-for-byte through JSON.

use proptest::prelude::*;
use st_obs::{DeterministicMetrics, MetricsSnapshot, Registry};

const BOUNDS: &[f64] = &[0.0, 1.0, 10.0];

/// One recording action against a registry, over a small shared key
/// pool so that independently generated op lists collide on keys (the
/// interesting case for an inverse).
#[derive(Clone, Debug)]
enum Op {
    Add(u8, u64),
    Gauge(u8, f64),
    Observe(u8, f64),
    Series(u8, Vec<f64>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u8..4,
        0u8..3,
        1u64..100,
        // Observation pool includes NaN and out-of-range values: NaN
        // lands in the nan tally, and everything must subtract cleanly.
        prop::sample::select(vec![f64::NAN, -3.0, 0.5, 2.0, 1e6]),
        prop::collection::vec(-1.0f64..1.0, 1..4),
    )
        .prop_map(|(kind, k, n, v, s)| match kind {
            0 => Op::Add(k, n),
            1 => Op::Gauge(k, n as f64 - 50.0),
            2 => Op::Observe(k, v),
            _ => Op::Series(k, s),
        })
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(), 0..40)
}

fn apply(ops: &[Op]) -> Registry {
    let reg = Registry::new();
    for op in ops {
        match op {
            Op::Add(k, n) => reg.add("c", &[("k", &k.to_string())], *n),
            Op::Gauge(k, v) => reg.set_gauge("g", &[("k", &k.to_string())], *v),
            Op::Observe(k, v) => reg.observe("h", &[("k", &k.to_string())], *v, BOUNDS),
            Op::Series(k, s) => reg.extend_series("s", &[("k", &k.to_string())], s),
        }
    }
    reg
}

/// `a`, `b`, and `merge(a, b)` as snapshots.
fn merge_pair(a_ops: &[Op], b_ops: &[Op]) -> (MetricsSnapshot, MetricsSnapshot, MetricsSnapshot) {
    let ra = apply(a_ops);
    let rb = apply(b_ops);
    let merged = Registry::new();
    merged.merge(&ra);
    merged.merge(&rb);
    (ra.snapshot(), rb.snapshot(), merged.snapshot())
}

proptest! {
    #[test]
    fn delta_of_a_merge_recovers_the_other_side(
        a_ops in ops_strategy(),
        b_ops in ops_strategy(),
    ) {
        let (a, b, merged) = merge_pair(&a_ops, &b_ops);
        let d = merged.delta(&a);
        // Counters: exactly b's contribution (b's adds are all >= 1, so
        // the omit-zero rule drops nothing b actually touched).
        prop_assert_eq!(&d.deterministic.counters, &b.deterministic.counters);
        // Histogram counting fields: exactly b's observations, key for
        // key (min/max carry the merged extremes by contract, so only
        // the counting fields are compared here).
        prop_assert_eq!(
            d.deterministic.histograms.keys().collect::<Vec<_>>(),
            b.deterministic.histograms.keys().collect::<Vec<_>>()
        );
        for (k, bh) in &b.deterministic.histograms {
            let dh = &d.deterministic.histograms[k];
            prop_assert_eq!(&dh.counts, &bh.counts, "bucket counts for {}", k);
            prop_assert_eq!(
                (dh.overflow, dh.nan, dh.count, dh.finite),
                (bh.overflow, bh.nan, bh.count, bh.finite),
                "tallies for {}", k
            );
        }
        // Series: exactly the suffix b appended.
        prop_assert_eq!(&d.deterministic.series, &b.deterministic.series);
    }

    #[test]
    fn deltas_never_go_negative(
        a_ops in ops_strategy(),
        b_ops in ops_strategy(),
    ) {
        let (a, _, merged) = merge_pair(&a_ops, &b_ops);
        // Reverse the arguments: the "newer" side is dominated
        // everywhere, so every subtraction saturates to zero and the
        // omit-zero rule leaves the counting sections empty — no u64
        // wrap-around ever reaches a consumer.
        let rev = a.delta(&merged);
        prop_assert!(rev.deterministic.counters.is_empty(), "{:?}", rev.deterministic.counters);
        prop_assert!(rev.deterministic.histograms.is_empty());
        // Forward deltas are bounded by the newer totals.
        let fwd = merged.delta(&a);
        for (k, &v) in &fwd.deterministic.counters {
            prop_assert!(v <= merged.deterministic.counters[k], "{} overshot", k);
        }
        // A snapshot's delta against itself is empty in every section.
        let idle = merged.delta(&merged);
        prop_assert_eq!(idle.deterministic, DeterministicMetrics::default());
        prop_assert!(idle.wall_clock.spans.is_empty());
        prop_assert!(idle.wall_clock.values.is_empty());
    }

    #[test]
    fn delta_then_merge_round_trips_through_json(
        a_ops in ops_strategy(),
        b_ops in ops_strategy(),
    ) {
        let (a, _, merged) = merge_pair(&a_ops, &b_ops);
        let d = merged.delta(&a);
        let mut rt = a.deterministic.clone();
        rt.merge(&d.deterministic);
        // Byte-for-byte: the watcher folding deltas onto its base must
        // land on the exact serialized snapshot, not an approximation.
        prop_assert_eq!(
            serde_json::to_string(&rt).expect("metrics serialize"),
            serde_json::to_string(&merged.deterministic).expect("metrics serialize")
        );
    }

    #[test]
    fn deltas_telescope_along_a_snapshot_chain(
        chunks in prop::collection::vec(ops_strategy(), 1..5),
    ) {
        // The watch verb's exact situation: one registry, snapshotted
        // after every epoch; folding the per-epoch deltas onto an empty
        // base must reproduce the final totals.
        let reg = Registry::new();
        let mut prev = MetricsSnapshot::empty();
        let mut folded = DeterministicMetrics::default();
        for chunk in &chunks {
            for op in chunk {
                match op {
                    Op::Add(k, n) => reg.add("c", &[("k", &k.to_string())], *n),
                    Op::Gauge(k, v) => reg.set_gauge("g", &[("k", &k.to_string())], *v),
                    Op::Observe(k, v) => {
                        reg.observe("h", &[("k", &k.to_string())], *v, BOUNDS)
                    }
                    Op::Series(k, s) => {
                        reg.extend_series("s", &[("k", &k.to_string())], s)
                    }
                }
            }
            let now = reg.snapshot();
            folded.merge(&now.delta(&prev).deterministic);
            prev = now;
        }
        prop_assert_eq!(
            serde_json::to_string(&folded).expect("metrics serialize"),
            serde_json::to_string(&reg.snapshot().deterministic).expect("metrics serialize")
        );
    }
}
