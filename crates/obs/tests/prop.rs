//! Property tests pinning the registry's merge algebra: the determinism
//! contract (DESIGN.md §13) rests on histogram merge being
//! order-invariant and associative, counter merge being commutative,
//! and observation never panicking on pathological values.

use proptest::prelude::*;
use st_obs::{Histogram, Registry};

/// Strategy: an observation drawn from a pool of pathological and sane
/// numbers — NaN, infinities, negatives, zero, huge, tiny, normal.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -1e12,
        -7.5,
        0.0,
        1e-9,
        0.5,
        1.0,
        9.99,
        10.0,
        1e6,
        1e300,
    ])
}

/// Strategy: bucket bounds, possibly unsorted / duplicated / non-finite
/// (Histogram::new must sanitize them).
fn bounds_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop::sample::select(vec![f64::NAN, f64::NEG_INFINITY, -5.0, 0.0, 1.0, 10.0, 10.0, 1e9]),
        0..6,
    )
}

fn histogram_of(bounds: &[f64], values: &[f64]) -> Histogram {
    let mut h = Histogram::new(bounds);
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn observation_never_panics_and_accounts_for_everything(
        bounds in bounds_strategy(),
        values in prop::collection::vec(value_strategy(), 0..60),
    ) {
        let h = histogram_of(&bounds, &values);
        prop_assert_eq!(h.count as usize, values.len());
        let bucketed: u64 = h.counts.iter().sum();
        prop_assert_eq!(bucketed + h.overflow + h.nan, h.count);
        prop_assert!(h.finite <= h.count);
        if h.finite > 0 {
            prop_assert!(h.min <= h.max);
            prop_assert!(h.min.is_finite() && h.max.is_finite());
        }
    }

    #[test]
    fn histogram_merge_is_order_invariant(
        bounds in bounds_strategy(),
        chunks in prop::collection::vec(
            prop::collection::vec(value_strategy(), 0..20), 1..6),
    ) {
        // Merging per-chunk histograms in any order must equal both the
        // reverse order and the sequential single-histogram run: this is
        // exactly the coordinator's per-city/per-chunk merge.
        let parts: Vec<Histogram> =
            chunks.iter().map(|c| histogram_of(&bounds, c)).collect();
        let mut fwd = Histogram::new(&bounds);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::new(&bounds);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&fwd, &rev);
        let all: Vec<f64> = chunks.concat();
        let sequential = histogram_of(&bounds, &all);
        prop_assert_eq!(&fwd, &sequential);
    }

    #[test]
    fn histogram_merge_is_associative(
        bounds in bounds_strategy(),
        a in prop::collection::vec(value_strategy(), 0..20),
        b in prop::collection::vec(value_strategy(), 0..20),
        c in prop::collection::vec(value_strategy(), 0..20),
    ) {
        let (ha, hb, hc) = (
            histogram_of(&bounds, &a),
            histogram_of(&bounds, &b),
            histogram_of(&bounds, &c),
        );
        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn counter_merge_is_commutative(
        xs in prop::collection::vec((0u8..4, 1u64..1000), 0..30),
        ys in prop::collection::vec((0u8..4, 1u64..1000), 0..30),
    ) {
        let fill = |pairs: &[(u8, u64)]| {
            let reg = Registry::new();
            for &(k, n) in pairs {
                reg.add("c", &[("k", &k.to_string())], n);
            }
            reg
        };
        // a ⊕ b
        let ab = fill(&xs);
        ab.merge(&fill(&ys));
        // b ⊕ a
        let ba = fill(&ys);
        ba.merge(&fill(&xs));
        prop_assert_eq!(
            ab.snapshot().deterministic.counters,
            ba.snapshot().deterministic.counters
        );
    }

    #[test]
    fn quantiles_are_monotone_in_p_and_bounded_by_the_finite_range(
        bounds in bounds_strategy(),
        values in prop::collection::vec(value_strategy(), 1..80),
        ps in prop::collection::vec(0.0f64..=1.0, 2..8),
    ) {
        let h = histogram_of(&bounds, &values);
        match h.quantile(0.5) {
            None => prop_assert_eq!(h.finite, 0, "only finite-free histograms may decline"),
            Some(_) => {
                // Bounded: every estimate stays inside [min, max].
                for &p in &ps {
                    let q = h.quantile(p).unwrap();
                    prop_assert!(q >= h.min && q <= h.max, "q({p}) = {q} outside [{}, {}]", h.min, h.max);
                }
                // Monotone: sorting the probabilities sorts the estimates.
                let mut sorted = ps.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let qs: Vec<f64> = sorted.iter().map(|&p| h.quantile(p).unwrap()).collect();
                for w in qs.windows(2) {
                    prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?} for {sorted:?}");
                }
            }
        }
    }

    #[test]
    fn quantiles_are_exact_on_single_bucket_inputs(
        value in -50.0f64..50.0,
        n in 1usize..40,
        p in 0.0f64..=1.0,
    ) {
        // Every observation is the same value, so whatever single bucket
        // it lands in, min == max pins the estimate exactly.
        let mut h = Histogram::new(&[-10.0, 0.0, 10.0]);
        for _ in 0..n {
            h.observe(value);
        }
        prop_assert_eq!(h.quantile(p), Some(value));
    }

    #[test]
    fn quantiles_are_stable_under_merge_order(
        bounds in bounds_strategy(),
        chunks in prop::collection::vec(
            prop::collection::vec(value_strategy(), 0..20), 1..6),
        p in 0.0f64..=1.0,
    ) {
        let parts: Vec<Histogram> =
            chunks.iter().map(|c| histogram_of(&bounds, c)).collect();
        let mut fwd = Histogram::new(&bounds);
        for part in &parts {
            fwd.merge(part);
        }
        let mut rev = Histogram::new(&bounds);
        for part in parts.iter().rev() {
            rev.merge(part);
        }
        // Bit-identical, not approximately equal: the regression gate
        // compares quantiles across runs at different parallelism.
        prop_assert_eq!(
            fwd.quantile(p).map(f64::to_bits),
            rev.quantile(p).map(f64::to_bits)
        );
    }

    #[test]
    fn registry_merge_matches_direct_recording(
        chunks in prop::collection::vec(
            prop::collection::vec(value_strategy(), 0..15), 1..5),
    ) {
        // The sub()-then-merge pattern the coordinators use must produce
        // the same deterministic snapshot as recording everything into
        // one registry sequentially.
        const BOUNDS: &[f64] = &[0.0, 1.0, 100.0];
        let direct = Registry::new();
        let merged = Registry::new();
        for chunk in &chunks {
            let sub = merged.sub();
            for &v in chunk {
                direct.observe("h", &[], v, BOUNDS);
                direct.inc("n", &[]);
                sub.observe("h", &[], v, BOUNDS);
                sub.inc("n", &[]);
            }
            merged.merge(&sub);
        }
        prop_assert_eq!(
            direct.snapshot().deterministic_json(),
            merged.snapshot().deterministic_json()
        );
    }
}
