#![warn(missing_docs)]
//! Pipeline observability: a deterministic metrics registry plus
//! lightweight tracing spans, with no dependencies beyond the vendored
//! offline stand-ins (see DESIGN.md §"Dependencies").
//!
//! The paper's whole argument is that a throughput number is meaningless
//! without its context; this crate applies the same argument to the
//! pipeline itself. Every layer (datagen, BST, sanitize, store, wire,
//! render) records *what it did* — record counts, EM iterations, KDE
//! grid evaluations, quarantine tallies, wire bytes — into a
//! [`Registry`], and the bench driver exports the result as
//! `BENCH_metrics.json` plus a `## Metrics` report section.
//!
//! Metrics are split into two classes (DESIGN.md §"Metric taxonomy"):
//!
//! * **Deterministic** ([`DeterministicMetrics`]): counters, gauges,
//!   fixed-bucket histograms, and value series. These are pure functions
//!   of the generated data, so — like the artifacts themselves — their
//!   serialized form is required to be **byte-identical at every
//!   `--parallelism` level**. The bench driver guarantees this the same
//!   way `SanitizeReport` does: each parallel unit of work records into
//!   its own sub-registry ([`Registry::sub`]) and the coordinator merges
//!   them back in city/job order ([`Registry::merge`]). The merge
//!   operations themselves are order-invariant for counters and
//!   histograms (integer sums, f64 min/max), so even direct concurrent
//!   recording cannot diverge.
//! * **Wall-clock** ([`WallClockMetrics`]): span durations and queue
//!   waits. Reported for profiling, excluded from every determinism
//!   contract — like `BENCH_timings.json`.
//!
//! Recording is **read-only observation**: a registry never feeds back
//! into any computation, so artifacts are byte-identical whether a run
//! records into an enabled registry or a [`Registry::disabled`] one
//! (pinned by `crates/bench/tests/golden_identity.rs`).
//!
//! Spans are scoped guards ([`Span`]): [`Registry::span`] opens one,
//! dropping it (or calling [`Span::stop`]) records its wall-clock
//! duration under a `/`-separated path. Nesting is explicit via
//! [`Span::child`], so a span tree never depends on thread-local state
//! and parallel children can be recorded into sub-registries.
//!
//! Every registry also accumulates a **trace timeline** (see [`trace`]):
//! each closed span becomes a complete Chrome-Trace-Event-Format event,
//! and [`Registry::event`] records instant lifecycle marks (stage
//! start/end, quarantine outcomes, degraded jobs, wire retries).
//! [`Registry::trace`] exports the buffer; event names/categories/args/
//! lanes/order are deterministic class, `ts`/`dur` are wall-clock class.

pub mod trace;

pub use trace::{Phase, Trace, TraceEvent};

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Append `s` with the key syntax characters (`\`, `,`, `=`, `{`, `}`)
/// backslash-escaped, so the rendered key is an injective encoding of
/// the (name, labels) set.
fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        if matches!(c, '\\' | ',' | '=' | '{' | '}') {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Render a metric key as `name{k1=v1,k2=v2}` with labels sorted by
/// label key, so the same (name, labels) set always produces the same
/// registry key regardless of call-site label order.
///
/// Label keys and values are backslash-escaped (`\`, `,`, `=`, `{`,
/// `}`), so two *distinct* label sets can never render the same
/// registry key — `{"a": "1,b=2"}` and `{"a": "1", "b": "2"}` stay
/// distinguishable. Metric *names* are compile-time constants by
/// convention and must not contain `{` (debug-asserted), which keeps
/// the name/label boundary unambiguous.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(!name.contains('{'), "metric name {name:?} must not contain '{{'");
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(&mut out, k);
        out.push('=');
        push_escaped(&mut out, v);
    }
    out.push('}');
    out
}

/// A fixed-bucket histogram over `f64` observations.
///
/// `bounds` are inclusive upper bucket edges, ascending; an observation
/// lands in the first bucket whose bound is `>= value`, values above
/// every bound (including `+inf`) land in `overflow`, `-inf` and any
/// other below-range value land in bucket 0, and `NaN` is tallied
/// separately — no observation ever panics. `min`/`max` cover the
/// finite observations only (`0.0` while `finite == 0`), so the struct
/// serializes cleanly and merging stays exactly order-invariant:
/// bucket counts add (commutative integers) and min/max combine with
/// `f64::min`/`f64::max` (associative and commutative bit-for-bit).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    /// Inclusive upper bucket edges, ascending.
    pub bounds: Vec<f64>,
    /// Observations per bucket (`counts.len() == bounds.len()`).
    pub counts: Vec<u64>,
    /// Observations above the last bound (including `+inf`).
    pub overflow: u64,
    /// NaN observations (counted, never bucketed).
    pub nan: u64,
    /// Total observations (bucketed + overflow + NaN).
    pub count: u64,
    /// Finite observations (what `min`/`max` cover).
    pub finite: u64,
    /// Smallest finite observation (0.0 while `finite == 0`).
    pub min: f64,
    /// Largest finite observation (0.0 while `finite == 0`).
    pub max: f64,
}

impl Histogram {
    /// An empty histogram with the given bucket bounds. Non-finite or
    /// unsorted bounds are sanitized (finite, sorted, deduplicated)
    /// rather than rejected.
    pub fn new(bounds: &[f64]) -> Self {
        let mut clean: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        clean.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        clean.dedup();
        let n = clean.len();
        Histogram {
            bounds: clean,
            counts: vec![0; n],
            overflow: 0,
            nan: 0,
            count: 0,
            finite: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Record one observation. Total, never panics: NaN → `nan`,
    /// above-range (and `+inf`) → `overflow`, below-range (and `-inf`)
    /// → bucket 0.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        if value.is_finite() {
            if self.finite == 0 {
                self.min = value;
                self.max = value;
            } else {
                self.min = self.min.min(value);
                self.max = self.max.max(value);
            }
            self.finite += 1;
        }
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Bucket-interpolated quantile estimate over the non-NaN
    /// observations (the Prometheus `histogram_quantile` scheme): walk
    /// the cumulative bucket counts to the bucket containing rank
    /// `p * n`, then interpolate linearly inside it. The first bucket's
    /// lower edge is `min`, the overflow bucket's upper edge is `max`,
    /// and the estimate is clamped into `[min, max]` — so it is exact
    /// whenever `min == max` (e.g. a constant input) and always inside
    /// the observed finite range. Returns `None` when no finite
    /// observation exists or `p` is NaN.
    ///
    /// The estimate is a pure function of the merged histogram state, so
    /// it inherits the merge algebra's order-invariance: any merge order
    /// of the same sub-histograms yields bit-identical quantiles.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.finite == 0 || p.is_nan() {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let n = (self.count - self.nan) as f64;
        let target = p * n;
        let mut cum = 0.0;
        let mut estimate = self.max;
        let overflow_idx = self.counts.len();
        for i in 0..=overflow_idx {
            let cnt = if i == overflow_idx { self.overflow } else { self.counts[i] } as f64;
            if cnt == 0.0 {
                continue;
            }
            if target <= cum + cnt {
                let lower = if i == 0 { self.min } else { self.bounds[i - 1] };
                let upper = if i == overflow_idx { self.max } else { self.bounds[i] };
                let frac = ((target - cum) / cnt).clamp(0.0, 1.0);
                estimate = if upper > lower { lower + frac * (upper - lower) } else { upper };
                break;
            }
            cum += cnt;
        }
        Some(estimate.clamp(self.min, self.max))
    }

    /// The inverse of [`Histogram::merge`] on the counting fields: with
    /// `self == merge(older, x)` the returned histogram carries exactly
    /// `x`'s bucket counts, overflow, NaN tally, total, and finite
    /// count. Subtraction saturates at zero, so a delta is never
    /// negative even on pairs that did not come from a merge.
    ///
    /// `min`/`max` are **not** invertible (a merge keeps the extremes of
    /// both sides), so the delta carries `self`'s values — which makes
    /// `older.merge(&delta)` reproduce `self` exactly, the round-trip
    /// the subscription path (DESIGN.md §19) leans on.
    pub fn delta(&self, older: &Histogram) -> Histogram {
        let shared = self.counts.len().min(older.counts.len());
        let mut counts = self.counts.clone();
        for (mine, old) in counts.iter_mut().zip(older.counts[..shared].iter()) {
            *mine = mine.saturating_sub(*old);
        }
        Histogram {
            bounds: self.bounds.clone(),
            counts,
            overflow: self.overflow.saturating_sub(older.overflow),
            nan: self.nan.saturating_sub(older.nan),
            count: self.count.saturating_sub(older.count),
            finite: self.finite.saturating_sub(older.finite),
            min: self.min,
            max: self.max,
        }
    }

    /// Fold `other` into `self`. With equal bounds (the only case the
    /// registry produces, since bounds are fixed per metric name) the
    /// merge is exactly order-invariant and associative. Mismatched
    /// bounds never panic: positionally shared buckets add and the
    /// remainder folds into `overflow`.
    pub fn merge(&mut self, other: &Histogram) {
        let shared = self.counts.len().min(other.counts.len());
        for i in 0..shared {
            self.counts[i] += other.counts[i];
        }
        for &c in &other.counts[shared..] {
            self.overflow += c;
        }
        self.overflow += other.overflow;
        self.nan += other.nan;
        self.count += other.count;
        if other.finite > 0 {
            if self.finite == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
            self.finite += other.finite;
        }
    }
}

/// Wall-clock statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total seconds across entries.
    pub total_s: f64,
}

/// The deterministic metric class: required byte-identical at every
/// parallelism level when serialized (all maps are ordered).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct DeterministicMetrics {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values. One writer per key by convention; on merge
    /// conflicts the maximum wins (order-invariant), NaN is ignored.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Ordered value sequences (e.g. an EM log-likelihood trajectory).
    /// One writer per key; merge appends in merge order.
    pub series: BTreeMap<String, Vec<f64>>,
}

impl DeterministicMetrics {
    /// Fold `other` into `self` with the registry's merge algebra:
    /// counters add, gauges take the max, histograms merge bucket-wise,
    /// series append. [`Registry::merge`] delegates here, so snapshots
    /// and live registries merge identically.
    pub fn merge(&mut self, other: &DeterministicMetrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.entry(k.clone()).and_modify(|g| *g = g.max(v)).or_insert(v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, s) in &other.series {
            self.series.entry(k.clone()).or_default().extend_from_slice(s);
        }
    }

    /// The inverse of [`DeterministicMetrics::merge`]: with
    /// `self == merge(older, x)` the delta recovers `x` exactly on
    /// counters (zero deltas are omitted, subtraction saturates — a
    /// delta is never negative), histogram counting fields, and series
    /// (the appended suffix). Gauges merge as max and are therefore not
    /// invertible; the delta carries `self`'s value for every key whose
    /// value moved, which still makes `older.merge(&delta)` reproduce
    /// `self` byte-for-byte — the watch-verb recurrence (DESIGN.md §19).
    pub fn delta(&self, older: &DeterministicMetrics) -> DeterministicMetrics {
        let mut out = DeterministicMetrics::default();
        for (k, &v) in &self.counters {
            let d = v.saturating_sub(older.counters.get(k).copied().unwrap_or(0));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, &v) in &self.gauges {
            // Write-once-by-convention keys: only a genuinely raised
            // value shows up in the delta.
            if older.gauges.get(k).map(|&o| feq(o, v)) != Some(true) {
                out.gauges.insert(k.clone(), v);
            }
        }
        for (k, h) in &self.histograms {
            let d = match older.histograms.get(k) {
                Some(old) => h.delta(old),
                None => h.clone(),
            };
            if d.count > 0 {
                out.histograms.insert(k.clone(), d);
            }
        }
        for (k, s) in &self.series {
            let suffix = match older.series.get(k) {
                Some(old) if s.len() >= old.len() && series_eq(&s[..old.len()], old) => {
                    s[old.len()..].to_vec()
                }
                Some(_) => s.clone(),
                None => s.clone(),
            };
            if !suffix.is_empty() {
                out.series.insert(k.clone(), suffix);
            }
        }
        out
    }
}

/// NaN-tolerant float equality: snapshots round-trip NaN, so a NaN
/// gauge must compare equal to itself when computing deltas.
fn feq(a: f64, b: f64) -> bool {
    a == b || (a.is_nan() && b.is_nan())
}

fn series_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| feq(*x, *y))
}

/// The wall-clock metric class: reported, never determinism-checked.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct WallClockMetrics {
    /// Span statistics keyed by `/`-separated span path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Measured-value histograms ([`Registry::observe_wall`]): values
    /// that derive from wall-clock observation (throughputs, latencies,
    /// quality scores) and therefore cannot join the deterministic
    /// class. Keys and bucket bounds are deterministic; bucket counts
    /// and min/max move with the environment, like span durations.
    pub values: BTreeMap<String, Histogram>,
}

impl WallClockMetrics {
    /// Fold `other` into `self`: span stats accumulate, value
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &WallClockMetrics) {
        for (k, s) in &other.spans {
            let stat = self.spans.entry(k.clone()).or_default();
            stat.count += s.count;
            stat.total_s += s.total_s;
        }
        for (k, h) in &other.values {
            match self.values.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.values.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Best-effort inverse of [`WallClockMetrics::merge`]: span entry
    /// counts subtract exactly (saturating), total seconds subtract and
    /// clamp at zero (floating-point sums are not exactly invertible —
    /// which is fine, this class is excluded from every determinism
    /// contract). Keys that did not move are omitted.
    pub fn delta(&self, older: &WallClockMetrics) -> WallClockMetrics {
        let mut out = WallClockMetrics::default();
        for (k, s) in &self.spans {
            let old = older.spans.get(k).copied().unwrap_or_default();
            let count = s.count.saturating_sub(old.count);
            let total_s = (s.total_s - old.total_s).max(0.0);
            if count > 0 || total_s > 0.0 {
                out.spans.insert(k.clone(), SpanStat { count, total_s });
            }
        }
        for (k, h) in &self.values {
            let d = match older.values.get(k) {
                Some(old) => h.delta(old),
                None => h.clone(),
            };
            if d.count > 0 {
                out.values.insert(k.clone(), d);
            }
        }
        out
    }
}

/// Everything a registry holds, in serializable form. Field order (and
/// the `BTreeMap` key order inside) is the stable `BENCH_metrics.json`
/// schema: `schema`, then `deterministic`, then `wall_clock`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Schema tag for consumers ("st-obs/v1").
    pub schema: &'static str,
    /// The parallelism-invariant section.
    pub deterministic: DeterministicMetrics,
    /// The profiling section (excluded from determinism contracts).
    pub wall_clock: WallClockMetrics,
}

impl MetricsSnapshot {
    /// Pretty JSON of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Pretty JSON of the deterministic section only — the byte string
    /// the parallelism-invariance tests compare.
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string_pretty(&self.deterministic).expect("metrics serialize")
    }

    /// What changed between two snapshots of the *same* registry: the
    /// inverse of the merge algebra, section by section (see
    /// [`DeterministicMetrics::delta`] / [`WallClockMetrics::delta`]).
    /// The subscription read path: a watcher holds its previous
    /// snapshot `Arc`, calls `new.delta(&old)`, and gets exactly the
    /// counter increments since its last observation — never negative,
    /// and telescoping (the deltas along any snapshot chain sum to the
    /// final totals). Property-tested in `tests/delta_prop.rs`.
    pub fn delta(&self, older: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            schema: self.schema,
            deterministic: self.deterministic.delta(&older.deterministic),
            wall_clock: self.wall_clock.delta(&older.wall_clock),
        }
    }

    /// An empty snapshot — the zero element of the merge algebra and
    /// the natural `older` seed for a subscription's first delta
    /// (`snap.delta(&MetricsSnapshot::empty())` is the running totals).
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            schema: "st-obs/v1",
            deterministic: DeterministicMetrics::default(),
            wall_clock: WallClockMetrics::default(),
        }
    }
}

/// Trace event buffer plus the lane watermark used to give every merged
/// sub-registry its own deterministic CTEF track block.
struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Lanes used so far: own events occupy lane 0, every merged sub
    /// shifts onto a fresh block. Grows only on merge, in merge order,
    /// so lane numbering is deterministic.
    lanes: u32,
}

struct Inner {
    /// Zero point for every `ts_us` in the trace. Sub-registries share
    /// their parent's epoch so merged timelines stay comparable.
    epoch: Instant,
    det: Mutex<DeterministicMetrics>,
    wall: Mutex<WallClockMetrics>,
    trace: Mutex<TraceBuf>,
    /// Bumped after every metric mutation (trace events excluded — they
    /// never appear in a snapshot). [`Registry::snapshot_shared`] keys
    /// its cache on this, so idle readers pay one atomic load plus an
    /// `Arc` bump instead of a full clone of every map.
    version: AtomicU64,
    /// `(version, snapshot)` pair last built by `snapshot_shared`. The
    /// version is read *before* the maps are cloned, so a write racing
    /// the build can only make the cache stale — never wrong.
    snap_cache: Mutex<(u64, Option<Arc<MetricsSnapshot>>)>,
}

impl Inner {
    fn with_epoch(epoch: Instant) -> Self {
        Inner {
            epoch,
            det: Mutex::default(),
            wall: Mutex::default(),
            trace: Mutex::new(TraceBuf { events: Vec::new(), lanes: 1 }),
            version: AtomicU64::new(0),
            snap_cache: Mutex::new((0, None)),
        }
    }

    /// Mark the metric state changed (invalidates the snapshot cache).
    fn bump(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// A cheap-to-clone handle onto one run's metrics. `Registry::disabled`
/// is a no-op sink: every recording call returns immediately, so
/// instrumented code needs no `if` at the call sites.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Registry {
    /// An enabled, empty registry. Its creation instant becomes the
    /// trace epoch every `ts_us` is measured from.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(Inner::with_epoch(Instant::now()))) }
    }

    /// A no-op registry: records nothing, costs (almost) nothing.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh, empty registry matching this one's enabled state. The
    /// unit-of-work pattern for deterministic parallelism: each parallel
    /// job records into its own `sub()` and the coordinator folds them
    /// back with [`Registry::merge`] in a fixed (city/chunk/paper) order.
    ///
    /// The sub shares this registry's trace epoch, so its events land on
    /// the same timeline when merged back.
    pub fn sub(&self) -> Self {
        match &self.inner {
            Some(inner) => Registry { inner: Some(Arc::new(Inner::with_epoch(inner.epoch))) },
            None => Registry::disabled(),
        }
    }

    /// Add `n` to the counter `name{labels}`.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], n: u64) {
        let Some(inner) = &self.inner else { return };
        *inner.det.lock().counters.entry(metric_key(name, labels)).or_insert(0) += n;
        inner.bump();
    }

    /// Add 1 to the counter `name{labels}`.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.add(name, labels, 1);
    }

    /// Set the gauge `name{labels}`. Keys are write-once by convention;
    /// if a key is written twice the maximum wins (so the outcome never
    /// depends on write order). NaN values are ignored.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        if value.is_nan() {
            return;
        }
        inner
            .det
            .lock()
            .gauges
            .entry(metric_key(name, labels))
            .and_modify(|g| *g = g.max(value))
            .or_insert(value);
        inner.bump();
    }

    /// Observe `value` in the histogram `name{labels}` with the given
    /// bucket `bounds`. The first observation of a key fixes its bounds;
    /// later calls reuse them (pass the same constant).
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64, bounds: &[f64]) {
        let Some(inner) = &self.inner else { return };
        inner
            .det
            .lock()
            .histograms
            .entry(metric_key(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
        inner.bump();
    }

    /// Observe `value` in the **wall-clock** histogram `name{labels}`.
    /// Use this for measured quantities (throughput, latency, quality
    /// scores): they land in the `wall_clock.values` section, which is
    /// reported but — like span durations — excluded from every exact
    /// determinism comparison. The first observation fixes the bounds.
    pub fn observe_wall(&self, name: &str, labels: &[(&str, &str)], value: f64, bounds: &[f64]) {
        let Some(inner) = &self.inner else { return };
        inner
            .wall
            .lock()
            .values
            .entry(metric_key(name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
        inner.bump();
    }

    /// Append `values` to the series `name{labels}`.
    pub fn extend_series(&self, name: &str, labels: &[(&str, &str)], values: &[f64]) {
        let Some(inner) = &self.inner else { return };
        inner
            .det
            .lock()
            .series
            .entry(metric_key(name, labels))
            .or_default()
            .extend_from_slice(values);
        inner.bump();
    }

    /// Record one completed wall-clock interval under span `path`.
    /// Affects the span statistics only; the scoped [`Span`] guard is
    /// what additionally emits a trace timeline event.
    pub fn record_span(&self, path: &str, secs: f64) {
        let Some(inner) = &self.inner else { return };
        {
            let mut wall = inner.wall.lock();
            let stat = wall.spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.total_s += secs;
        }
        inner.bump();
    }

    /// Record an instant lifecycle trace event (`ph: "i"`) under `name`
    /// with CTEF category `cat` and deterministic `args`, stamped with
    /// the wall-clock offset from the trace epoch. Event *content and
    /// order* are deterministic class; the timestamp is wall-clock class
    /// (DESIGN.md §14).
    pub fn event(&self, name: &str, cat: &str, args: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        let ts_us = inner.epoch.elapsed().as_micros() as u64;
        inner.trace.lock().events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            phase: Phase::Instant,
            lane: 0,
            args: args.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            ts_us,
            dur_us: 0,
        });
    }

    /// Close a span guard: record its wall-clock statistic and append
    /// the matching complete (`ph: "X"`) trace event.
    fn finish_span(&self, path: &str, start: Instant) -> f64 {
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let Some(inner) = &self.inner else { return secs };
        {
            let mut wall = inner.wall.lock();
            let stat = wall.spans.entry(path.to_string()).or_default();
            stat.count += 1;
            stat.total_s += secs;
        }
        inner.bump();
        let ts_us = start.saturating_duration_since(inner.epoch).as_micros() as u64;
        let cat = path.split('/').next().unwrap_or(path).to_string();
        inner.trace.lock().events.push(TraceEvent {
            name: path.to_string(),
            cat,
            phase: Phase::Complete,
            lane: 0,
            args: Vec::new(),
            ts_us,
            dur_us: elapsed.as_micros() as u64,
        });
        secs
    }

    /// Open a root span. The guard records its duration on drop (or
    /// [`Span::stop`]); nest with [`Span::child`].
    pub fn span(&self, name: &str) -> Span {
        Span { reg: self.clone(), path: name.to_string(), start: Instant::now(), done: false }
    }

    /// Fold every metric of `other` into `self`: counters add, gauges
    /// take the max, histograms merge bucket-wise, series append, span
    /// stats accumulate. Deterministic parallel pipelines call this in a
    /// fixed order, mirroring `SanitizeReport::merge`.
    pub fn merge(&self, other: &Registry) {
        let (Some(inner), Some(other_inner)) = (&self.inner, &other.inner) else { return };
        if Arc::ptr_eq(inner, other_inner) {
            return; // merging a registry into itself would deadlock
        }
        {
            let theirs = other_inner.det.lock();
            inner.det.lock().merge(&theirs);
        }
        {
            let theirs = other_inner.wall.lock();
            inner.wall.lock().merge(&theirs);
        }
        // Trace events append in merge order, shifted onto a fresh lane
        // block so every merged unit of work keeps its own CTEF track.
        {
            let theirs = other_inner.trace.lock();
            let mut ours = inner.trace.lock();
            let base = ours.lanes;
            ours.events.extend(theirs.events.iter().map(|e| {
                let mut e = e.clone();
                e.lane += base;
                e
            }));
            ours.lanes = base + theirs.lanes;
        }
        inner.bump();
    }

    /// A copy of the trace buffer recorded so far (empty when disabled).
    pub fn trace(&self) -> Trace {
        match &self.inner {
            Some(inner) => Trace { events: inner.trace.lock().events.clone() },
            None => Trace::default(),
        }
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        (*self.snapshot_shared()).clone()
    }

    /// The mutation version: bumped after every metric write (trace
    /// events excluded). A subscriber can poll this one atomic load to
    /// decide whether [`Registry::snapshot_shared`] would hand back
    /// anything new — the cheap change-detection hook the operator
    /// console's live feed sits on (ROADMAP item 5). Always 0 on a
    /// disabled registry.
    pub fn version(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.version.load(Ordering::Acquire),
            None => 0,
        }
    }

    /// A shared, cached snapshot of everything recorded so far — the
    /// cheap read path a long-running service's query loop (and the
    /// operator console ROADMAP item 5 wants) can hit per request.
    ///
    /// The snapshot is rebuilt only when a metric has changed since the
    /// last call; an idle registry hands out the same `Arc` every time
    /// (one atomic load + refcount bump, no map clones). A write racing
    /// a rebuild at worst leaves the cache marked stale, so the next
    /// call rebuilds again — callers never observe a snapshot older
    /// than the last mutation that completed before they called.
    pub fn snapshot_shared(&self) -> Arc<MetricsSnapshot> {
        let Some(inner) = &self.inner else {
            return Arc::new(MetricsSnapshot::empty());
        };
        let mut cache = inner.snap_cache.lock();
        // Read the version *before* cloning the maps: a concurrent
        // write can then only invalidate (version moves on), never be
        // silently absorbed under a too-new version stamp.
        let version = inner.version.load(Ordering::Acquire);
        if let (cached_version, Some(snap)) = &*cache {
            if *cached_version == version {
                return Arc::clone(snap);
            }
        }
        let snap = Arc::new(MetricsSnapshot {
            schema: "st-obs/v1",
            deterministic: inner.det.lock().clone(),
            wall_clock: inner.wall.lock().clone(),
        });
        *cache = (version, Some(Arc::clone(&snap)));
        snap
    }
}

/// A scoped wall-clock span. Dropping the guard records the elapsed
/// seconds under the span's `/`-joined path; [`Span::stop`] does the
/// same but also returns the duration (it is measured even on a
/// disabled registry, so stage timings don't depend on metrics being
/// enabled).
pub struct Span {
    reg: Registry,
    path: String,
    start: Instant,
    done: bool,
}

impl Span {
    /// Open a child span `self.path + "/" + name` on the same registry.
    pub fn child(&self, name: &str) -> Span {
        Span {
            reg: self.reg.clone(),
            path: format!("{}/{name}", self.path),
            start: Instant::now(),
            done: false,
        }
    }

    /// This span's full path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Close the span, record it (span statistic plus a complete trace
    /// event), and return the elapsed seconds.
    pub fn stop(mut self) -> f64 {
        self.done = true;
        self.reg.finish_span(&self.path, self.start)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.done {
            self.reg.finish_span(&self.path, self.start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_serialize_sorted() {
        let reg = Registry::new();
        reg.add("b.count", &[], 2);
        reg.inc("a.count", &[("city", "City-A")]);
        reg.inc("a.count", &[("city", "City-A")]);
        let snap = reg.snapshot();
        assert_eq!(snap.deterministic.counters["a.count{city=City-A}"], 2);
        assert_eq!(snap.deterministic.counters["b.count"], 2);
        let json = snap.deterministic_json();
        let a = json.find("a.count").unwrap();
        let b = json.find("b.count").unwrap();
        assert!(a < b, "keys must serialize in sorted order");
    }

    #[test]
    fn metric_key_sorts_labels() {
        assert_eq!(
            metric_key("m", &[("z", "1"), ("a", "2")]),
            metric_key("m", &[("a", "2"), ("z", "1")])
        );
        assert_eq!(metric_key("m", &[]), "m");
    }

    #[test]
    fn metric_key_escapes_label_syntax_characters() {
        // Regression: unescaped interpolation let two distinct label sets
        // render the same key. The smuggled separators must stay inert.
        let smuggled = metric_key("m", &[("a", "1,b=2")]);
        let distinct = metric_key("m", &[("a", "1"), ("b", "2")]);
        assert_ne!(smuggled, distinct, "label sets collided: {smuggled}");
        assert_eq!(smuggled, r"m{a=1\,b\=2}");
        assert_eq!(metric_key("m", &[("k", "a{b}c\\d")]), r"m{k=a\{b\}c\\d}");
        // Escaping is injective: a value that *looks* pre-escaped stays
        // distinct from the raw one.
        assert_ne!(metric_key("m", &[("k", r"x\,y")]), metric_key("m", &[("k", "x,y")]));
        // And two keys recorded through a registry stay separate.
        let reg = Registry::new();
        reg.inc("c", &[("a", "1,b=2")]);
        reg.inc("c", &[("a", "1"), ("b", "2")]);
        assert_eq!(reg.snapshot().deterministic.counters.len(), 2);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let mut h = Histogram::new(&[10.0, 20.0, 40.0]);
        for v in [2.0, 12.0, 14.0, 16.0, 18.0, 25.0, 30.0, 35.0, 38.0, 39.0] {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((10.0..=20.0).contains(&p50), "p50 {p50} outside its bucket");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= h.max && p99 >= h.quantile(0.9).unwrap());
        assert_eq!(h.quantile(0.0).unwrap(), h.min);
        assert_eq!(h.quantile(1.0).unwrap(), h.max);
        // Out-of-range p clamps, NaN p and empty histograms decline.
        assert_eq!(h.quantile(7.0).unwrap(), h.max);
        assert!(h.quantile(f64::NAN).is_none());
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_none());
        // A constant input is recovered exactly at every p.
        let mut constant = Histogram::new(&[10.0, 20.0]);
        for _ in 0..5 {
            constant.observe(15.0);
        }
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(constant.quantile(p), Some(15.0));
        }
    }

    #[test]
    fn quantiles_ignore_nan_and_survive_infinities() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        assert!(h.quantile(0.5).is_none(), "NaN-only histogram has no quantiles");
        h.observe(0.5);
        h.observe(f64::INFINITY);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50.is_finite() && (h.min..=h.max).contains(&p50));
    }

    #[test]
    fn spans_emit_complete_trace_events_and_lifecycle_events_are_instants() {
        let reg = Registry::new();
        {
            let root = reg.span("fit");
            let child = root.child("city_a");
            drop(child);
        }
        reg.event("quarantine", "lifecycle", &[("reason", "duplicate-id")]);
        let trace = reg.trace();
        assert_eq!(trace.events.len(), 3);
        // Children close before parents; instants follow in record order.
        assert_eq!(trace.events[0].name, "fit/city_a");
        assert_eq!(trace.events[0].cat, "fit");
        assert_eq!(trace.events[0].phase, Phase::Complete);
        assert_eq!(trace.events[1].name, "fit");
        assert_eq!(trace.events[2].phase, Phase::Instant);
        assert_eq!(trace.events[2].args, vec![("reason".to_string(), "duplicate-id".to_string())]);
        assert!(trace.events.iter().all(|e| e.lane == 0), "own events sit on lane 0");
        // Disabled registries record no trace.
        let off = Registry::disabled();
        off.event("x", "lifecycle", &[]);
        drop(off.span("s"));
        assert!(off.trace().events.is_empty());
    }

    #[test]
    fn merge_shifts_sub_traces_onto_fresh_lanes_in_merge_order() {
        let root = Registry::new();
        drop(root.span("stage"));
        let sub_a = root.sub();
        sub_a.event("a", "lifecycle", &[]);
        let sub_b = root.sub();
        sub_b.event("b", "lifecycle", &[]);
        root.merge(&sub_a);
        root.merge(&sub_b);
        let lanes: Vec<(String, u32)> =
            root.trace().events.iter().map(|e| (e.name.clone(), e.lane)).collect();
        assert_eq!(
            lanes,
            vec![("stage".to_string(), 0), ("a".to_string(), 1), ("b".to_string(), 2)],
            "merge order must assign deterministic lane blocks"
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        reg.inc("x", &[]);
        reg.set_gauge("g", &[], 1.0);
        reg.observe("h", &[], 1.0, &[1.0, 2.0]);
        reg.extend_series("s", &[], &[1.0]);
        let s = reg.span("root");
        let secs = s.stop();
        assert!(secs >= 0.0, "stop still measures on a disabled registry");
        let snap = reg.snapshot();
        assert_eq!(snap.deterministic, DeterministicMetrics::default());
        assert!(snap.wall_clock.spans.is_empty());
        // A sub of a disabled registry is disabled too.
        assert!(!reg.sub().is_enabled());
        assert!(Registry::new().sub().is_enabled());
    }

    #[test]
    fn gauge_merge_is_max_and_ignores_nan() {
        let reg = Registry::new();
        reg.set_gauge("g", &[], 2.0);
        reg.set_gauge("g", &[], 1.0);
        reg.set_gauge("g", &[], f64::NAN);
        assert_eq!(reg.snapshot().deterministic.gauges["g"], 2.0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_edges() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 3.0, 10.0, 11.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.count, 5);
        assert_eq!((h.min, h.max), (0.5, 11.0));
    }

    #[test]
    fn histogram_handles_pathological_values() {
        let mut h = Histogram::new(&[0.0, 5.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(-3.0);
        assert_eq!(h.nan, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.counts[0], 2, "-inf and -3.0 land in the lowest bucket");
        assert_eq!(h.count, 4);
        assert_eq!(h.finite, 1);
        assert_eq!((h.min, h.max), (-3.0, -3.0));
    }

    #[test]
    fn histogram_sanitizes_bounds() {
        let h = Histogram::new(&[5.0, f64::NAN, 1.0, 5.0, f64::INFINITY]);
        assert_eq!(h.bounds, vec![1.0, 5.0]);
    }

    #[test]
    fn spans_nest_by_path_and_accumulate() {
        let reg = Registry::new();
        {
            let root = reg.span("fit");
            let child = root.child("city_a");
            drop(child);
            let again = root.child("city_a");
            drop(again);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.wall_clock.spans["fit"].count, 1);
        assert_eq!(snap.wall_clock.spans["fit/city_a"].count, 2);
        assert!(snap.wall_clock.spans["fit"].total_s >= 0.0);
    }

    #[test]
    fn merge_folds_every_class() {
        let a = Registry::new();
        let b = Registry::new();
        a.inc("c", &[]);
        b.add("c", &[], 3);
        a.set_gauge("g", &[], 1.0);
        b.set_gauge("g", &[], 5.0);
        a.observe("h", &[], 1.0, &[2.0]);
        b.observe("h", &[], 3.0, &[2.0]);
        a.extend_series("s", &[], &[1.0]);
        b.extend_series("s", &[], &[2.0]);
        b.record_span("sp", 0.5);
        a.record_span("sp", 0.25);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.deterministic.counters["c"], 4);
        assert_eq!(snap.deterministic.gauges["g"], 5.0);
        assert_eq!(snap.deterministic.histograms["h"].count, 2);
        assert_eq!(snap.deterministic.histograms["h"].overflow, 1);
        assert_eq!(snap.deterministic.series["s"], vec![1.0, 2.0]);
        assert_eq!(snap.wall_clock.spans["sp"].count, 2);
        assert!((snap.wall_clock.spans["sp"].total_s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wall_values_stay_out_of_the_deterministic_class_and_merge() {
        let a = Registry::new();
        let b = Registry::new();
        a.observe_wall("load.score_streaming", &[], 80.0, &[25.0, 50.0, 75.0, 100.0]);
        b.observe_wall("load.score_streaming", &[], 30.0, &[25.0, 50.0, 75.0, 100.0]);
        a.merge(&b);
        let snap = a.snapshot();
        assert!(snap.deterministic.histograms.is_empty(), "wall values leaked");
        let h = &snap.wall_clock.values["load.score_streaming"];
        assert_eq!(h.count, 2);
        assert_eq!((h.min, h.max), (30.0, 80.0));
        // The deterministic comparison surface is untouched by wall
        // observations, and disabled registries record nothing.
        assert_eq!(snap.deterministic, DeterministicMetrics::default());
        let off = Registry::disabled();
        off.observe_wall("v", &[], 1.0, &[2.0]);
        assert!(off.snapshot().wall_clock.values.is_empty());
    }

    #[test]
    fn self_merge_is_a_no_op() {
        let a = Registry::new();
        a.inc("c", &[]);
        let same = a.clone();
        a.merge(&same); // must not deadlock or double-count
        assert_eq!(a.snapshot().deterministic.counters["c"], 1);
    }

    #[test]
    fn snapshot_json_has_the_stable_schema() {
        let reg = Registry::new();
        reg.inc("c", &[]);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"schema\": \"st-obs/v1\""));
        assert!(json.contains("\"deterministic\""));
        assert!(json.contains("\"wall_clock\""));
    }

    #[test]
    fn snapshot_shared_reuses_the_arc_until_a_metric_changes() {
        let reg = Registry::new();
        reg.inc("c", &[]);
        let a = reg.snapshot_shared();
        let b = reg.snapshot_shared();
        assert!(Arc::ptr_eq(&a, &b), "idle registry must hand out the cached snapshot");
        assert_eq!(a.deterministic.counters["c"], 1);

        // Every mutation class invalidates: counter, gauge, histogram,
        // wall value, series, span stat, and merge.
        reg.inc("c", &[]);
        let c = reg.snapshot_shared();
        assert!(!Arc::ptr_eq(&b, &c), "a counter write must invalidate the cache");
        assert_eq!(c.deterministic.counters["c"], 2);

        for (i, mutate) in [
            (&|r: &Registry| r.set_gauge("g", &[], 4.0)) as &dyn Fn(&Registry),
            &|r: &Registry| r.observe("h", &[], 1.0, &[2.0]),
            &|r: &Registry| r.observe_wall("w", &[], 1.0, &[2.0]),
            &|r: &Registry| r.extend_series("s", &[], &[1.0]),
            &|r: &Registry| r.record_span("sp", 0.5),
            &|r: &Registry| {
                let sub = r.sub();
                sub.inc("m", &[]);
                r.merge(&sub);
            },
        ]
        .iter()
        .enumerate()
        {
            let before = reg.snapshot_shared();
            mutate(&reg);
            let after = reg.snapshot_shared();
            assert!(!Arc::ptr_eq(&before, &after), "mutation #{i} must invalidate the cache");
        }
        assert_eq!(reg.snapshot_shared().deterministic.counters["m"], 1);

        // Trace events never appear in a snapshot, so they must not
        // force a rebuild.
        let before = reg.snapshot_shared();
        reg.event("e", "lifecycle", &[]);
        assert!(Arc::ptr_eq(&before, &reg.snapshot_shared()));

        // Disabled registries hand out empty snapshots.
        let off = Registry::disabled();
        assert!(off.snapshot_shared().deterministic.counters.is_empty());
    }

    #[test]
    fn delta_inverts_merge_on_counters_and_round_trips() {
        let a = Registry::new();
        a.add("c", &[], 5);
        a.add("only_a", &[], 2);
        a.observe("h", &[], 1.0, &[2.0, 4.0]);
        a.extend_series("s", &[], &[1.0, 2.0]);
        a.set_gauge("g", &[], 1.0);
        let b = Registry::new();
        b.add("c", &[], 3);
        b.add("only_b", &[], 7);
        b.observe("h", &[], 3.0, &[2.0, 4.0]);
        b.extend_series("s", &[], &[9.0]);
        b.set_gauge("g", &[], 4.0);
        let merged = Registry::new();
        merged.merge(&a);
        merged.merge(&b);
        let d = merged.snapshot().delta(&a.snapshot());
        // Counters recover exactly what b contributed.
        assert_eq!(d.deterministic.counters, b.snapshot().deterministic.counters);
        // Histogram counting fields recover b's observation.
        let dh = &d.deterministic.histograms["h"];
        assert_eq!((dh.count, dh.counts.clone()), (1, vec![0, 1]));
        // The series delta is the appended suffix.
        assert_eq!(d.deterministic.series["s"], vec![9.0]);
        // Raised gauges carry the new value; merge back reproduces the
        // merged deterministic section byte for byte.
        assert_eq!(d.deterministic.gauges["g"], 4.0);
        let mut rt = a.snapshot().deterministic.clone();
        rt.merge(&d.deterministic);
        assert_eq!(rt, merged.snapshot().deterministic);
        assert_eq!(
            serde_json::to_string(&rt).unwrap(),
            serde_json::to_string(&merged.snapshot().deterministic).unwrap(),
            "round-trip must survive serialization byte for byte"
        );
    }

    #[test]
    fn delta_never_goes_negative_and_idle_deltas_are_empty() {
        let a = Registry::new();
        a.add("c", &[], 5);
        a.observe("h", &[], 1.0, &[2.0]);
        let snap = a.snapshot();
        // Self-delta: nothing moved.
        let d = snap.delta(&snap);
        assert_eq!(d.deterministic, DeterministicMetrics::default());
        // Even against a *newer* "older" side (not a merge pair),
        // saturation keeps every count at zero instead of wrapping.
        let fresh = Registry::new();
        fresh.add("c", &[], 2);
        let d = fresh.snapshot().delta(&snap);
        assert!(d.deterministic.counters.is_empty(), "5 -> 2 must saturate, not wrap");
    }

    #[test]
    fn registry_version_moves_with_mutations_only() {
        let reg = Registry::new();
        let v0 = reg.version();
        reg.inc("c", &[]);
        let v1 = reg.version();
        assert!(v1 > v0, "a counter write must advance the version");
        reg.event("e", "lifecycle", &[]);
        assert_eq!(reg.version(), v1, "trace events never invalidate snapshots");
        assert_eq!(Registry::disabled().version(), 0);
    }

    #[test]
    fn snapshot_delegates_to_the_shared_cache() {
        let reg = Registry::new();
        reg.inc("c", &[]);
        reg.observe_wall("w", &[], 1.0, &[2.0]);
        assert_eq!(reg.snapshot(), (*reg.snapshot_shared()).clone());
    }
}
