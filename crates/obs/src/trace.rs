//! Trace timeline export in Chrome Trace Event Format (CTEF).
//!
//! Every [`crate::Registry`] accumulates a buffer of [`TraceEvent`]s
//! alongside its metrics: one complete (`ph: "X"`) event per closed
//! span, plus instant (`ph: "i"`) lifecycle events recorded with
//! [`crate::Registry::event`] — stage start/end marks, per-campaign
//! quarantine outcomes, degraded render jobs, wire connect retries.
//! [`Trace::to_chrome_json`] serializes the buffer as a CTEF JSON object
//! loadable in Perfetto or `chrome://tracing`.
//!
//! The two-class contract of DESIGN.md §13/§14 applies field by field:
//!
//! * **Deterministic**: `name`, `cat`, `ph`, `lane` (exported as `tid`),
//!   `args`, and the *order* of events in the buffer. Sub-registries are
//!   merged in fixed city/job order and each unit of parallel work
//!   records single-threaded into its own sub, so the serialized
//!   deterministic view ([`Trace::deterministic_json`]) is byte-identical
//!   at every parallelism level.
//! * **Wall-clock**: `ts` and `dur` (microseconds since the root
//!   registry's epoch). Reported for the timeline, excluded from every
//!   determinism contract.
//!
//! Lanes are the CTEF thread ids: a registry's own events sit on lane 0,
//! and every merged sub-registry is shifted onto a fresh lane block in
//! merge order. In Perfetto each unit of parallel work therefore renders
//! as its own track, while the lane numbering itself stays a pure
//! function of the (fixed) merge order.

use serde::json::Writer;

/// CTEF phase of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A closed span: `ph: "X"` with a duration.
    Complete,
    /// A point-in-time lifecycle mark: `ph: "i"`, thread-scoped.
    Instant,
}

impl Phase {
    /// The CTEF `ph` string.
    pub fn ph(&self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }
}

/// One recorded trace event. `name`/`cat`/`phase`/`lane`/`args` are the
/// deterministic class; `ts_us`/`dur_us` are wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (a span's `/`-joined path, or a lifecycle event name).
    pub name: String,
    /// CTEF category: a span's root path segment, or `"lifecycle"`.
    pub cat: String,
    /// Complete (span) or instant (lifecycle mark).
    pub phase: Phase,
    /// Deterministic track id (CTEF `tid`): 0 for events recorded on the
    /// registry itself, a fresh block per merged sub-registry.
    pub lane: u32,
    /// Deterministic key/value annotations, in recording order.
    pub args: Vec<(String, String)>,
    /// Microseconds since the root registry's epoch (wall-clock class).
    pub ts_us: u64,
    /// Event duration in microseconds; 0 for instants (wall-clock class).
    pub dur_us: u64,
}

/// An exported copy of a registry's trace buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in deterministic buffer order (recording order on each
    /// registry, sub-registries appended in merge order).
    pub events: Vec<TraceEvent>,
}

fn write_args(w: &mut Writer, args: &[(String, String)]) {
    w.begin_object();
    for (k, v) in args {
        w.key(k);
        w.string(v);
    }
    w.end_object();
}

impl Trace {
    /// Serialize as a Chrome Trace Event Format JSON object
    /// (`{"displayTimeUnit": "ms", "traceEvents": [...]}`), loadable in
    /// Perfetto / `chrome://tracing`. `process_name` becomes the CTEF
    /// process metadata; every lane gets a thread-name metadata event so
    /// the tracks are labeled. All events share `pid` 1.
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        let mut w = Writer::pretty();
        w.begin_object();
        w.key("displayTimeUnit");
        w.string("ms");
        w.key("traceEvents");
        w.begin_array();

        w.element();
        w.begin_object();
        w.key("name");
        w.string("process_name");
        w.key("ph");
        w.string("M");
        w.key("pid");
        w.raw("1");
        w.key("tid");
        w.raw("0");
        w.key("args");
        w.begin_object();
        w.key("name");
        w.string(process_name);
        w.end_object();
        w.end_object();

        let mut lanes: Vec<u32> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for lane in &lanes {
            w.element();
            w.begin_object();
            w.key("name");
            w.string("thread_name");
            w.key("ph");
            w.string("M");
            w.key("pid");
            w.raw("1");
            w.key("tid");
            w.raw(&lane.to_string());
            w.key("args");
            w.begin_object();
            w.key("name");
            w.string(&format!("lane {lane}"));
            w.end_object();
            w.end_object();
        }

        for e in &self.events {
            w.element();
            w.begin_object();
            w.key("name");
            w.string(&e.name);
            w.key("cat");
            w.string(&e.cat);
            w.key("ph");
            w.string(e.phase.ph());
            if e.phase == Phase::Instant {
                // Thread-scoped instant; renders as a mark on its track.
                w.key("s");
                w.string("t");
            }
            w.key("ts");
            w.raw(&e.ts_us.to_string());
            if e.phase == Phase::Complete {
                w.key("dur");
                w.raw(&e.dur_us.to_string());
            }
            w.key("pid");
            w.raw("1");
            w.key("tid");
            w.raw(&e.lane.to_string());
            w.key("args");
            write_args(&mut w, &e.args);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Serialize the deterministic event fields only (`name`, `cat`,
    /// `ph`, `lane`, `args`, in buffer order) — the byte string the
    /// parallelism-invariance tests compare. Stripping `ts`/`dur` here,
    /// rather than in the consumer, keeps the two-class split explicit.
    pub fn deterministic_json(&self) -> String {
        let mut w = Writer::pretty();
        w.begin_array();
        for e in &self.events {
            w.element();
            w.begin_object();
            w.key("name");
            w.string(&e.name);
            w.key("cat");
            w.string(&e.cat);
            w.key("ph");
            w.string(e.phase.ph());
            w.key("lane");
            w.raw(&e.lane.to_string());
            w.key("args");
            write_args(&mut w, &e.args);
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            events: vec![
                TraceEvent {
                    name: "generate".into(),
                    cat: "generate".into(),
                    phase: Phase::Complete,
                    lane: 0,
                    args: vec![],
                    ts_us: 10,
                    dur_us: 500,
                },
                TraceEvent {
                    name: "sanitize.outcome".into(),
                    cat: "lifecycle".into(),
                    phase: Phase::Instant,
                    lane: 2,
                    args: vec![("campaign".into(), "ookla".into())],
                    ts_us: 120,
                    dur_us: 0,
                },
            ],
        }
    }

    #[test]
    fn chrome_json_has_the_ctef_shape() {
        let json = sample().to_chrome_json("test-proc");
        let doc = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
        // process_name + two thread_name metadata + two events.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        let span = &events[3];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(500));
        assert_eq!(span.get("tid").unwrap().as_u64(), Some(0));
        let instant = &events[4];
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(instant.get("s").unwrap().as_str(), Some("t"));
        assert!(instant.get("dur").is_none(), "instants carry no dur");
        assert_eq!(instant.get("args").unwrap().get("campaign").unwrap().as_str(), Some("ookla"));
    }

    #[test]
    fn deterministic_view_strips_wall_clock_fields() {
        let mut a = sample();
        let det_a = a.deterministic_json();
        for e in &mut a.events {
            e.ts_us = e.ts_us.wrapping_mul(17) + 3;
            e.dur_us += 999;
        }
        assert_eq!(det_a, a.deterministic_json(), "ts/dur leaked into the deterministic view");
        assert!(!det_a.contains("\"ts\""));
        assert!(!det_a.contains("\"dur\""));
    }
}
